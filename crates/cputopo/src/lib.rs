//! A parametric model of server CPU topology.
//!
//! The paper this workspace reproduces studies microservice scale-up on a
//! dual-socket x86 server with 128 logical CPUs per socket, organized — as on
//! AMD "Rome"-class parts — into a deep hierarchy:
//!
//! ```text
//! machine ─ socket ─ NUMA node ─ CCD (die) ─ CCX (shared L3) ─ core ─ SMT thread
//! ```
//!
//! Placement decisions (which services share an L3, whether a caller and its
//! callee cross a socket boundary) are the paper's central lever, so this
//! crate models exactly the structure those decisions read:
//!
//! * [`Topology`] — the immutable hierarchy, built by [`TopologyBuilder`] or
//!   one of the presets ([`Topology::zen2_2p_128c`] et al.).
//! * [`CpuSet`] — affinity masks over logical CPUs.
//! * [`Proximity`] — how "far apart" two logical CPUs are (same core … cross
//!   socket), the input to communication-cost models.
//! * [`enumerate`] — CPU enumeration orders (linear, cores-first, CCX
//!   round-robin…) matching how `taskset`-style masks are built in practice.
//!
//! # Example
//!
//! ```
//! use cputopo::{Topology, Proximity};
//!
//! let topo = Topology::zen2_2p_128c();
//! assert_eq!(topo.num_cpus(), 256);
//! assert_eq!(topo.num_ccxs(), 32);
//! let a = topo.cpus_in_ccx(cputopo::CcxId(0)).iter().next().unwrap();
//! let b = topo.smt_sibling(a).unwrap();
//! assert_eq!(topo.proximity(a, b), Proximity::SmtSibling);
//! ```

pub mod cpulist;
pub mod cpuset;
pub mod enumerate;
pub mod ids;
pub mod topology;

pub use cpuset::CpuSet;
pub use ids::{CcdId, CcxId, CoreId, CpuId, NumaId, SocketId};
pub use topology::{CacheSpec, Proximity, Topology, TopologyBuilder, TopologySpec};
