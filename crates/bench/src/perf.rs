//! Simulator self-benchmark: how fast does the hot path retire events?
//!
//! `repro perf` runs fixed full-scale scenarios, reports wall time and
//! events/second (best of a few repetitions — wall time on a shared box is
//! noisy, the minimum is the signal), and writes the machine-readable
//! `results/BENCH_simperf.json`. The JSON also carries the pre-overhaul
//! baseline wall time recorded for the same flagship scenario, so the
//! speedup of the timer-wheel/slab/memo work stays visible in CI artifacts.

use loadgen::ClosedLoop;
use microsvc::{Deployment, Engine, EngineParams};
use simcore::{SimDuration, SimTime};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use teastore::TeaStore;

/// Commit of the recorded pre-overhaul baseline.
pub const BASELINE_COMMIT: &str = "fc95e44";
/// Wall seconds the flagship scenario took at [`BASELINE_COMMIT`]
/// (BinaryHeap calendar, allocating request path, unmemoized CPI model).
/// Minimum of six runs interleaved with runs of the current tree and with
/// [`calibrate`] samples, so both trees saw identical machine conditions.
pub const BASELINE_WALL_SECS: f64 = 1.347;
/// [`calibrate`] wall seconds on the host state the baseline minimum was
/// recorded under. The host this repository is benchmarked on drifts in
/// speed over minutes (shared VM); scaling the recorded baseline by
/// `calibrate() / BASELINE_CALIB_SECS` compares both trees at the *same*
/// host speed instead of blaming (or crediting) the drift.
pub const BASELINE_CALIB_SECS: f64 = 0.159;

/// A fixed pure-CPU workload used to normalize for host speed drift:
/// a SplitMix64 stream folded into one value so it cannot be optimized out.
/// Sized to ~1/10 of the flagship scenario so it can be sampled next to
/// every repetition.
pub fn calibrate() -> f64 {
    let t0 = Instant::now();
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut acc: u64 = 0;
    for _ in 0..100_000_000u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        acc ^= z ^ (z >> 31);
    }
    std::hint::black_box(acc);
    t0.elapsed().as_secs_f64()
}
/// The scenario the baseline was recorded on.
pub const BASELINE_SCENARIO: &str = "teastore_2p256_512u_2s";

/// One benchmark scenario: a deterministic full engine run.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    name: &'static str,
    /// `true` → the paper's 2P/256-CPU machine, else the desktop topology.
    big_machine: bool,
    users: u64,
    think_ms: u64,
    warmup_ms: u64,
    measure_ms: u64,
}

/// The flagship scenario — identical to the one the baseline was timed on.
const FLAGSHIP: Scenario = Scenario {
    name: BASELINE_SCENARIO,
    big_machine: true,
    users: 512,
    think_ms: 20,
    warmup_ms: 1000,
    measure_ms: 2000,
};

/// A desktop-sized scenario cheap enough for CI smoke runs.
const DESKTOP: Scenario = Scenario {
    name: "teastore_desktop_64u_300ms",
    big_machine: false,
    users: 64,
    think_ms: 10,
    warmup_ms: 200,
    measure_ms: 300,
};

/// Measured result of one scenario (best of `reps` repetitions).
#[derive(Debug, Clone)]
pub struct PerfRun {
    /// Scenario name.
    pub scenario: String,
    /// Repetitions run (the minimum wall time is reported).
    pub reps: usize,
    /// Best wall-clock seconds.
    pub wall_secs: f64,
    /// Calendar events processed by the run.
    pub events: u64,
    /// Events per wall second at the best repetition.
    pub events_per_sec: f64,
    /// Requests completed in the measurement window.
    pub completed: u64,
}

fn run_once(s: &Scenario) -> (f64, u64, u64) {
    let topo = Arc::new(if s.big_machine {
        cputopo::Topology::zen2_2p_128c()
    } else {
        cputopo::Topology::desktop_8c()
    });
    let store = TeaStore::browse();
    let mix = store.mix();
    let app = store.into_app();
    let deployment = Deployment::uniform(&app, &topo, 4, 12);
    let mut engine = Engine::new(topo, EngineParams::default(), app, deployment, 1);
    let mut load = ClosedLoop::new(s.users)
        .think_time(SimDuration::from_millis(s.think_ms))
        .mix(&mix)
        .warmup(SimDuration::from_millis(s.warmup_ms))
        .measure(SimDuration::from_millis(s.measure_ms));
    let t0 = Instant::now();
    engine.run(&mut load, SimTime::from_secs(60));
    let wall = t0.elapsed().as_secs_f64();
    (wall, engine.events_processed(), engine.report().completed)
}

fn measure(s: &Scenario, reps: usize) -> PerfRun {
    measure_paired(s, reps, false).0
}

/// Runs `reps` repetitions; with `paired`, samples [`calibrate`] right before
/// each repetition so every wall time has a host-speed reading taken under
/// the same machine conditions. Returns the best-of run plus the
/// `(calib_secs, wall_secs)` pairs.
fn measure_paired(s: &Scenario, reps: usize, paired: bool) -> (PerfRun, Vec<(f64, f64)>) {
    let mut pairs = Vec::with_capacity(reps);
    let mut best_wall = f64::INFINITY;
    let mut events = 0;
    let mut completed = 0;
    for _ in 0..reps {
        let calib = if paired { calibrate() } else { 0.0 };
        let (wall, ev, done) = run_once(s);
        best_wall = best_wall.min(wall);
        events = ev;
        completed = done;
        pairs.push((calib, wall));
    }
    (
        PerfRun {
            scenario: s.name.to_owned(),
            reps,
            wall_secs: best_wall,
            events,
            events_per_sec: events as f64 / best_wall,
            completed,
        },
        pairs,
    )
}

/// Runs the self-benchmark and renders the human table plus the JSON body
/// of `results/BENCH_simperf.json`.
///
/// `quick` limits the run to the desktop scenario with fewer repetitions
/// (used by the CI smoke job); the speedup-vs-baseline figure needs the full
/// mode, which times the flagship scenario the baseline was recorded on.
pub fn run(quick: bool) -> (String, String) {
    let (runs, pairs): (Vec<PerfRun>, Vec<(f64, f64)>) = if quick {
        (vec![measure(&DESKTOP, 2)], Vec::new())
    } else {
        let (flagship, pairs) = measure_paired(&FLAGSHIP, 6, true);
        (vec![flagship, measure(&DESKTOP, 3)], pairs)
    };
    // The host drifts in speed, and interference only ever *adds* time, to
    // the calibration sample and the scenario alike. The repetition with the
    // best paired calibration-to-wall ratio therefore ran under the least
    // interference and gives the least noise-inflated speedup estimate.
    let speedup_info = pairs
        .iter()
        .copied()
        .max_by(|a, b| (a.0 / a.1).total_cmp(&(b.0 / b.1)))
        .map(|(calib, wall)| {
            let host_factor = calib / BASELINE_CALIB_SECS;
            let adjusted_baseline = BASELINE_WALL_SECS * host_factor;
            (calib, wall, host_factor, adjusted_baseline)
        });

    let mut table = String::from(
        "perf: simulator self-benchmark (best wall time over repetitions)\nscenario                        reps    wall s       events      events/s   completed\n",
    );
    for r in &runs {
        let _ = writeln!(
            table,
            "{:<30} {:>5} {:>9.3} {:>12} {:>13.0} {:>11}",
            r.scenario, r.reps, r.wall_secs, r.events, r.events_per_sec, r.completed
        );
    }
    let _ = writeln!(
        table,
        "baseline: {BASELINE_WALL_SECS:.3} s for {BASELINE_SCENARIO} at {BASELINE_COMMIT} (pre-overhaul)"
    );
    match speedup_info {
        Some((calib, wall, host_factor, adjusted_baseline)) => {
            let _ = writeln!(
                table,
                "host calibration: {calib:.3} s beside the best repetition vs {BASELINE_CALIB_SECS:.3} s at recording (x{host_factor:.2}) -> baseline {adjusted_baseline:.3} s at today's host speed"
            );
            let _ = writeln!(
                table,
                "speedup vs baseline: {:.2}x ({adjusted_baseline:.3} s / {wall:.3} s, host-speed matched)",
                adjusted_baseline / wall
            );
        }
        None => {
            let _ = writeln!(
                table,
                "(quick mode skips the flagship scenario; run `repro perf` for the speedup figure)"
            );
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"baseline\": {{ \"commit\": \"{BASELINE_COMMIT}\", \"scenario\": \"{BASELINE_SCENARIO}\", \"wall_secs\": {BASELINE_WALL_SECS}, \"calib_secs\": {BASELINE_CALIB_SECS} }},"
    );
    if let Some((calib, wall, host_factor, adjusted_baseline)) = speedup_info {
        let _ = writeln!(
            json,
            "  \"host_calibration\": {{ \"measured_secs\": {calib:.6}, \"factor\": {host_factor:.4}, \"baseline_wall_secs_adjusted\": {adjusted_baseline:.6}, \"paired_wall_secs\": {wall:.6} }},"
        );
    }
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            json,
            "    {{ \"scenario\": \"{}\", \"reps\": {}, \"wall_secs\": {:.6}, \"events\": {}, \"events_per_sec\": {:.0}, \"completed\": {} }}",
            r.scenario, r.reps, r.wall_secs, r.events, r.events_per_sec, r.completed
        );
        json.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    match speedup_info {
        Some((_, wall, _, adjusted_baseline)) => {
            let _ = writeln!(json, "  \"speedup_vs_baseline\": {:.3}", adjusted_baseline / wall);
        }
        None => {
            json.push_str("  \"speedup_vs_baseline\": null\n");
        }
    }
    json.push_str("}\n");
    (table, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_perf_runs_and_renders_json() {
        let (table, json) = run(true);
        assert!(table.contains("teastore_desktop_64u_300ms"));
        assert!(table.contains("baseline"));
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains("\"speedup_vs_baseline\": null"));
        // Sanity: the desktop scenario retires a meaningful number of events.
        let (_, _, completed) = run_once(&DESKTOP);
        assert!(completed > 100, "completed {completed}");
    }
}
