//! Simulator self-benchmark: how fast does the hot path retire events?
//!
//! `repro perf` runs fixed full-scale scenarios, reports wall time and
//! events/second (best of a few repetitions — wall time on a shared box is
//! noisy, the minimum is the signal), and writes the machine-readable
//! `results/BENCH_simperf.json`. The JSON also carries the pre-overhaul
//! baseline wall time recorded for the same flagship scenario, so the
//! speedup of the timer-wheel/slab/memo work stays visible in CI artifacts.

use loadgen::ClosedLoop;
use microsvc::{
    mix_seed, Deployment, Engine, EngineParams, ShardSpec, ShardedRun, SyncStats, WindowPolicy,
};
use simcore::{SimDuration, SimTime};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use teastore::TeaStore;

/// Counting global allocator, active with the `alloc-count` feature: every
/// allocation bumps an atomic counter and a live-byte gauge, so `repro perf`
/// can report hot-path allocation pressure per scenario. Off by default —
/// the shim adds two relaxed atomics to every malloc/free.
#[cfg(feature = "alloc-count")]
pub mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

    /// Total allocations since process start.
    pub static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
    /// Bytes currently allocated (allocations minus frees).
    pub static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

    struct Counting;

    // SAFETY: defers all allocation to `System`; only adds atomic counters.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            LIVE_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static COUNTING: Counting = Counting;

    /// `(allocations, live_bytes)` snapshot.
    pub fn snapshot() -> (u64, i64) {
        (
            ALLOCATIONS.load(Ordering::Relaxed),
            LIVE_BYTES.load(Ordering::Relaxed),
        )
    }
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); 0 where the proc filesystem is unavailable.
/// Monotonic over the process lifetime, so per-scenario readings reflect
/// the largest scenario run so far.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse::<u64>()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Commit of the recorded pre-overhaul baseline.
pub const BASELINE_COMMIT: &str = "fc95e44";
/// Wall seconds the flagship scenario took at [`BASELINE_COMMIT`]
/// (BinaryHeap calendar, allocating request path, unmemoized CPI model).
/// Minimum of six runs interleaved with runs of the current tree and with
/// [`calibrate`] samples, so both trees saw identical machine conditions.
pub const BASELINE_WALL_SECS: f64 = 1.347;
/// [`calibrate`] wall seconds on the host state the baseline minimum was
/// recorded under. The host this repository is benchmarked on drifts in
/// speed over minutes (shared VM); scaling the recorded baseline by
/// `calibrate() / BASELINE_CALIB_SECS` compares both trees at the *same*
/// host speed instead of blaming (or crediting) the drift.
pub const BASELINE_CALIB_SECS: f64 = 0.159;

/// A fixed pure-CPU workload used to normalize for host speed drift:
/// a SplitMix64 stream folded into one value so it cannot be optimized out.
/// Sized to ~1/10 of the flagship scenario so it can be sampled next to
/// every repetition.
pub fn calibrate() -> f64 {
    let t0 = Instant::now();
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut acc: u64 = 0;
    for _ in 0..100_000_000u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        acc ^= z ^ (z >> 31);
    }
    std::hint::black_box(acc);
    t0.elapsed().as_secs_f64()
}
/// The scenario the baseline was recorded on.
pub const BASELINE_SCENARIO: &str = "teastore_2p256_512u_2s";

/// One benchmark scenario: a deterministic full engine run.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    name: &'static str,
    /// `true` → the paper's 2P/256-CPU machine, else the desktop topology.
    big_machine: bool,
    users: u64,
    think_ms: u64,
    warmup_ms: u64,
    measure_ms: u64,
    /// Think-wakeup coalescing grain in ms (0 = exact per-user timers).
    coalesce_ms: u64,
    /// Parallel-in-run cell count (1 = the serial engine). The count is
    /// part of the scenario: sharded event totals are deterministic *per
    /// shard count*, so the gate must always compare like with like.
    shards: u32,
    /// Window-synchronization policy for sharded scenarios. Never changes
    /// the simulated result — only how many barrier crossings (and
    /// rollbacks) it takes to get there, which is exactly what the
    /// speculative scenario benchmarks.
    policy: WindowPolicy,
}

/// The flagship scenario — identical to the one the baseline was timed on.
const FLAGSHIP: Scenario = Scenario {
    name: BASELINE_SCENARIO,
    big_machine: true,
    users: 512,
    think_ms: 20,
    warmup_ms: 1000,
    measure_ms: 2000,
    coalesce_ms: 0,
    shards: 1,
    policy: WindowPolicy::Conservative,
};

/// A desktop-sized scenario cheap enough for CI smoke runs.
const DESKTOP: Scenario = Scenario {
    name: "teastore_desktop_64u_300ms",
    big_machine: false,
    users: 64,
    think_ms: 10,
    warmup_ms: 200,
    measure_ms: 300,
    coalesce_ms: 0,
    shards: 1,
    policy: WindowPolicy::Conservative,
};

/// The mega scenario: one million closed-loop users on the 2-socket
/// machine. Ten-second think times keep the offered load near the socket's
/// saturation point rather than 1000× past it; 5 ms wake coalescing keeps
/// the calendar at O(active buckets) instead of a million live timers. The
/// short simulated window bounds the work — the point is the *population*,
/// exercising the SoA user table, the compact slabs, and batch wakeups.
const MEGA: Scenario = Scenario {
    name: "teastore_mega_1m_users",
    big_machine: true,
    users: 1_000_000,
    think_ms: 10_000,
    warmup_ms: 500,
    measure_ms: 1500,
    coalesce_ms: 5,
    shards: 1,
    policy: WindowPolicy::Conservative,
};

/// The sharded mega scenario: ten million closed-loop users split over 8
/// conservative-lookahead cells (1.25M users per cell, each cell a full
/// machine copy). The cell count is fixed at 8 — not the host's core count
/// — so the simulated event totals are identical on every machine and the
/// gate's events/s floor is comparable across hosts; worker threads scale
/// with the host separately. Think time scales with the population (same
/// per-cell offered load as [`MEGA`]).
const MEGA_SHARDED: Scenario = Scenario {
    name: "teastore_mega_sharded",
    big_machine: true,
    users: 10_000_000,
    think_ms: 100_000,
    warmup_ms: 500,
    measure_ms: 1500,
    coalesce_ms: 10,
    shards: 8,
    policy: WindowPolicy::Conservative,
};

/// [`MEGA_SHARDED`] under speculative window synchronization: identical
/// workload, cells, and (by the determinism contract) simulated results —
/// only the barrier count, the rollback work, and the wall clock differ.
/// Riding the same gate baseline as every other scenario, it keeps the
/// pay-as-you-go synchronization honest in CI: the `barriers_per_sim_sec`
/// figures this pair writes to `results/BENCH_simperf.json` are the
/// headline comparison (conservative crosses two barriers per 1 ms window;
/// speculation amortizes them over whole rounds).
const MEGA_SPECULATIVE: Scenario = Scenario {
    name: "teastore_mega_speculative",
    big_machine: true,
    users: 10_000_000,
    think_ms: 100_000,
    warmup_ms: 500,
    measure_ms: 1500,
    coalesce_ms: 10,
    shards: 8,
    policy: WindowPolicy::Speculative {
        cap: microsvc::DEFAULT_LOOKAHEAD_CAP,
    },
};

/// Measured result of one scenario (best of `reps` repetitions).
#[derive(Debug, Clone)]
pub struct PerfRun {
    /// Scenario name.
    pub scenario: String,
    /// Repetitions run (the minimum wall time is reported).
    pub reps: usize,
    /// Best wall-clock seconds.
    pub wall_secs: f64,
    /// Calendar events processed by the run.
    pub events: u64,
    /// Events per wall second at the best repetition.
    pub events_per_sec: f64,
    /// Requests completed in the measurement window.
    pub completed: u64,
    /// Process peak RSS (bytes) sampled right after the scenario. Monotonic
    /// per process, so order scenarios smallest-first for per-scenario
    /// attribution.
    pub peak_rss_bytes: u64,
    /// Simulation-state heap bytes (engine slabs + calendar + generator
    /// user table) divided by the user population.
    pub bytes_per_user: f64,
    /// Allocations retired during the run (`alloc-count` feature only).
    pub allocations: Option<u64>,
    /// Live heap bytes held at the end of the run (`alloc-count` only).
    pub live_bytes: Option<i64>,
    /// Window-synchronization counters (sharded scenarios only).
    pub sync: Option<SyncStats>,
    /// Barrier crossings per simulated second (sharded scenarios only) —
    /// the figure the window policies compete on. Deterministic per
    /// (scenario, policy), unlike the wall-clock columns.
    pub barriers_per_sim_sec: Option<f64>,
}

struct OnceResult {
    wall: f64,
    events: u64,
    completed: u64,
    /// Engine + generator footprint at end of run.
    footprint: u64,
    allocations: Option<u64>,
    live_bytes: Option<i64>,
    /// Sync counters and simulated seconds (sharded scenarios only).
    sync: Option<(SyncStats, f64)>,
}

fn run_once(s: &Scenario) -> OnceResult {
    if s.shards > 1 {
        return run_once_sharded(s);
    }
    let topo = Arc::new(if s.big_machine {
        cputopo::Topology::zen2_2p_128c()
    } else {
        cputopo::Topology::desktop_8c()
    });
    let store = TeaStore::browse();
    let mix = store.mix();
    let app = store.into_app();
    let deployment = Deployment::uniform(&app, &topo, 4, 12);
    let mut engine = Engine::new(topo, EngineParams::default(), app, deployment, 1);
    let mut load = ClosedLoop::new(s.users)
        .think_time(SimDuration::from_millis(s.think_ms))
        .mix(&mix)
        .warmup(SimDuration::from_millis(s.warmup_ms))
        .measure(SimDuration::from_millis(s.measure_ms));
    if s.coalesce_ms > 0 {
        load = load.coalesce(SimDuration::from_millis(s.coalesce_ms));
    }
    #[cfg(feature = "alloc-count")]
    let alloc_before = alloc_count::snapshot();
    let t0 = Instant::now();
    engine.run(&mut load, SimTime::from_secs(60));
    let wall = t0.elapsed().as_secs_f64();
    #[cfg(feature = "alloc-count")]
    let (allocations, live_bytes) = {
        let after = alloc_count::snapshot();
        (Some(after.0 - alloc_before.0), Some(after.1))
    };
    #[cfg(not(feature = "alloc-count"))]
    let (allocations, live_bytes) = (None, None);
    OnceResult {
        wall,
        events: engine.events_processed(),
        completed: engine.report().completed,
        footprint: (engine.footprint_bytes() + load.footprint_bytes()) as u64,
        allocations,
        live_bytes,
        sync: None,
    }
}

/// [`run_once`] for a sharded scenario: the same deployment per cell, the
/// population split evenly, cross-cell traffic at the default 5% with the
/// 1 ms lookahead window. Worker threads track the host's core count —
/// the simulated results depend only on the cell count, not the workers.
fn run_once_sharded(s: &Scenario) -> OnceResult {
    let topo = Arc::new(if s.big_machine {
        cputopo::Topology::zen2_2p_128c()
    } else {
        cputopo::Topology::desktop_8c()
    });
    let store = TeaStore::browse();
    let mix = store.mix();
    let app = store.into_app();
    let deployment = Deployment::uniform(&app, &topo, 4, 12);
    let spec = ShardSpec {
        cells: s.shards,
        cross_permille: 50,
        latency: SimDuration::from_millis(1),
    };
    let cells: Vec<(Engine, ClosedLoop)> = (0..s.shards)
        .map(|c| {
            let engine = Engine::new(
                topo.clone(),
                EngineParams::default(),
                app.clone(),
                deployment.clone(),
                mix_seed(1, c),
            );
            let users = s.users / u64::from(s.shards)
                + u64::from(u64::from(c) < s.users % u64::from(s.shards));
            let mut load = ClosedLoop::new(users)
                .think_time(SimDuration::from_millis(s.think_ms))
                .mix(&mix)
                .warmup(SimDuration::from_millis(s.warmup_ms))
                .measure(SimDuration::from_millis(s.measure_ms));
            if s.coalesce_ms > 0 {
                load = load.coalesce(SimDuration::from_millis(s.coalesce_ms));
            }
            (engine, load)
        })
        .collect();
    let mut run = ShardedRun::new(cells, spec).with_policy(s.policy);
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    #[cfg(feature = "alloc-count")]
    let alloc_before = alloc_count::snapshot();
    let t0 = Instant::now();
    run.run(SimTime::from_secs(60), workers);
    let wall = t0.elapsed().as_secs_f64();
    let sim_secs = (run.now().as_nanos() as f64 / 1e9).max(1e-9);
    let sync = Some((run.sync_stats(), sim_secs));
    #[cfg(feature = "alloc-count")]
    let (allocations, live_bytes) = {
        let after = alloc_count::snapshot();
        (Some(after.0 - alloc_before.0), Some(after.1))
    };
    #[cfg(not(feature = "alloc-count"))]
    let (allocations, live_bytes) = (None, None);
    let report = run.report();
    let driver_bytes: u64 = run.drivers().map(|d| d.inner().footprint_bytes() as u64).sum();
    OnceResult {
        wall,
        events: run.events_processed(),
        completed: report.completed,
        footprint: report.engine_footprint_bytes + driver_bytes,
        allocations,
        live_bytes,
        sync,
    }
}

fn measure(s: &Scenario, reps: usize) -> PerfRun {
    measure_paired(s, reps, false).0
}

/// Runs `reps` repetitions; with `paired`, samples [`calibrate`] right before
/// each repetition so every wall time has a host-speed reading taken under
/// the same machine conditions. Returns the best-of run plus the
/// `(calib_secs, wall_secs)` pairs.
fn measure_paired(s: &Scenario, reps: usize, paired: bool) -> (PerfRun, Vec<(f64, f64)>) {
    let mut pairs = Vec::with_capacity(reps);
    let mut best_wall = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let calib = if paired { calibrate() } else { 0.0 };
        let once = run_once(s);
        best_wall = best_wall.min(once.wall);
        pairs.push((calib, once.wall));
        last = Some(once);
    }
    let last = last.expect("at least one repetition");
    (
        PerfRun {
            scenario: s.name.to_owned(),
            reps,
            wall_secs: best_wall,
            events: last.events,
            events_per_sec: last.events as f64 / best_wall,
            completed: last.completed,
            peak_rss_bytes: peak_rss_bytes(),
            bytes_per_user: last.footprint as f64 / s.users as f64,
            allocations: last.allocations,
            live_bytes: last.live_bytes,
            sync: last.sync.map(|(stats, _)| stats),
            barriers_per_sim_sec: last
                .sync
                .map(|(stats, sim_secs)| stats.barriers as f64 / sim_secs),
        },
        pairs,
    )
}

/// Runs the self-benchmark and renders the human table plus the JSON body
/// of `results/BENCH_simperf.json`.
///
/// `quick` limits the run to the desktop scenario with fewer repetitions
/// (used by the CI smoke job); the speedup-vs-baseline figure needs the full
/// mode, which times the flagship scenario the baseline was recorded on.
pub fn run(quick: bool) -> (String, String) {
    // Scenarios run smallest-first so the monotonic peak-RSS column mostly
    // attributes each reading to its own scenario.
    let (runs, pairs): (Vec<PerfRun>, Vec<(f64, f64)>) = if quick {
        (
            vec![
                measure(&DESKTOP, 2),
                measure(&MEGA, 1),
                measure(&MEGA_SHARDED, 1),
                measure(&MEGA_SPECULATIVE, 1),
            ],
            Vec::new(),
        )
    } else {
        let desktop = measure(&DESKTOP, 3);
        let (flagship, pairs) = measure_paired(&FLAGSHIP, 6, true);
        (
            vec![
                desktop,
                flagship,
                measure(&MEGA, 2),
                measure(&MEGA_SHARDED, 2),
                measure(&MEGA_SPECULATIVE, 2),
            ],
            pairs,
        )
    };
    render(&runs, &pairs)
}

/// Renders the human table and JSON body for already-measured runs.
fn render(runs: &[PerfRun], pairs: &[(f64, f64)]) -> (String, String) {
    // The host drifts in speed, and interference only ever *adds* time, to
    // the calibration sample and the scenario alike. The repetition with the
    // best paired calibration-to-wall ratio therefore ran under the least
    // interference and gives the least noise-inflated speedup estimate.
    let speedup_info = pairs
        .iter()
        .copied()
        .max_by(|a, b| (a.0 / a.1).total_cmp(&(b.0 / b.1)))
        .map(|(calib, wall)| {
            let host_factor = calib / BASELINE_CALIB_SECS;
            let adjusted_baseline = BASELINE_WALL_SECS * host_factor;
            (calib, wall, host_factor, adjusted_baseline)
        });

    let mut table = String::from(
        "perf: simulator self-benchmark (best wall time over repetitions)\nscenario                        reps    wall s       events      events/s   completed  peak MiB    B/user\n",
    );
    for r in runs {
        let _ = writeln!(
            table,
            "{:<30} {:>5} {:>9.3} {:>12} {:>13.0} {:>11} {:>9.1} {:>9.1}",
            r.scenario,
            r.reps,
            r.wall_secs,
            r.events,
            r.events_per_sec,
            r.completed,
            r.peak_rss_bytes as f64 / (1024.0 * 1024.0),
            r.bytes_per_user,
        );
        if let (Some(sync), Some(bpss)) = (r.sync, r.barriers_per_sim_sec) {
            let _ = writeln!(
                table,
                "{:<30} sync: {} barriers ({:.0}/sim-s), {} rounds, {} rollbacks, {} replayed events",
                "", sync.barriers, bpss, sync.rounds, sync.rollbacks, sync.replayed_events
            );
        }
        if let (Some(allocs), Some(live)) = (r.allocations, r.live_bytes) {
            let _ = writeln!(
                table,
                "{:<30} allocations {} live bytes {}",
                "", allocs, live
            );
        }
    }
    let _ = writeln!(
        table,
        "baseline: {BASELINE_WALL_SECS:.3} s for {BASELINE_SCENARIO} at {BASELINE_COMMIT} (pre-overhaul)"
    );
    match speedup_info {
        Some((calib, wall, host_factor, adjusted_baseline)) => {
            let _ = writeln!(
                table,
                "host calibration: {calib:.3} s beside the best repetition vs {BASELINE_CALIB_SECS:.3} s at recording (x{host_factor:.2}) -> baseline {adjusted_baseline:.3} s at today's host speed"
            );
            let _ = writeln!(
                table,
                "speedup vs baseline: {:.2}x ({adjusted_baseline:.3} s / {wall:.3} s, host-speed matched)",
                adjusted_baseline / wall
            );
        }
        None => {
            let _ = writeln!(
                table,
                "(quick mode skips the flagship scenario; run `repro perf` for the speedup figure)"
            );
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"baseline\": {{ \"commit\": \"{BASELINE_COMMIT}\", \"scenario\": \"{BASELINE_SCENARIO}\", \"wall_secs\": {BASELINE_WALL_SECS}, \"calib_secs\": {BASELINE_CALIB_SECS} }},"
    );
    if let Some((calib, wall, host_factor, adjusted_baseline)) = speedup_info {
        let _ = writeln!(
            json,
            "  \"host_calibration\": {{ \"measured_secs\": {calib:.6}, \"factor\": {host_factor:.4}, \"baseline_wall_secs_adjusted\": {adjusted_baseline:.6}, \"paired_wall_secs\": {wall:.6} }},"
        );
    }
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            json,
            "    {{ \"scenario\": \"{}\", \"reps\": {}, \"wall_secs\": {:.6}, \"events\": {}, \"events_per_sec\": {:.0}, \"completed\": {}, \"peak_rss_bytes\": {}, \"bytes_per_user\": {:.1}",
            r.scenario,
            r.reps,
            r.wall_secs,
            r.events,
            r.events_per_sec,
            r.completed,
            r.peak_rss_bytes,
            r.bytes_per_user
        );
        if let (Some(sync), Some(bpss)) = (r.sync, r.barriers_per_sim_sec) {
            let _ = write!(
                json,
                ", \"barriers\": {}, \"barriers_per_sim_sec\": {:.1}, \"rounds\": {}, \"rollbacks\": {}, \"replayed_events\": {}",
                sync.barriers, bpss, sync.rounds, sync.rollbacks, sync.replayed_events
            );
        }
        if let (Some(allocs), Some(live)) = (r.allocations, r.live_bytes) {
            let _ = write!(json, ", \"allocations\": {allocs}, \"live_bytes\": {live}");
        }
        json.push_str(" }");
        json.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    match speedup_info {
        Some((_, wall, _, adjusted_baseline)) => {
            let _ = writeln!(json, "  \"speedup_vs_baseline\": {:.3}", adjusted_baseline / wall);
        }
        None => {
            json.push_str("  \"speedup_vs_baseline\": null\n");
        }
    }
    json.push_str("}\n");
    (table, json)
}

// ---------------------------------------------------------------- CI gate

/// Extracts `(scenario, events_per_sec)` pairs from a `BENCH_simperf.json`
/// body. Scans the run objects only — the `baseline` header object names a
/// scenario but carries no `events_per_sec` inside its braces.
pub fn parse_runs(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for chunk in json.split("\"scenario\": \"").skip(1) {
        let Some(name_end) = chunk.find('"') else {
            continue;
        };
        let name = &chunk[..name_end];
        let obj = &chunk[..chunk.find('}').unwrap_or(chunk.len())];
        if let Some(eps) = parse_field(obj, "\"events_per_sec\": ") {
            out.push((name.to_owned(), eps));
        }
    }
    out
}

/// Parses the number following `key` in a JSON body we generated ourselves.
fn parse_field(json: &str, key: &str) -> Option<f64> {
    let rest = &json[json.find(key)? + key.len()..];
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    num.parse().ok()
}

/// Reads the committed gate baseline, failing with an actionable message —
/// never silently — when the file is missing or unreadable. A missing
/// baseline must fail the gate loudly: skipping it would let regressions
/// through a CI job that claims to guard against them.
pub fn read_baseline(path: &std::path::Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| {
        format!(
            "perf gate: cannot read baseline {}: {e}\nrun `repro perf` and commit results/BENCH_simperf.json to record one",
            path.display()
        )
    })
}

/// `--gate` only has an effect when the `perf` experiment actually runs;
/// catching the mismatch up front beats parsing the flag and silently
/// ignoring it (which used to make `repro --gate X e3` pass vacuously).
pub fn gate_requires_perf(wanted: &[String], gate_requested: bool) -> Result<(), String> {
    if gate_requested && !wanted.iter().any(|w| w == "perf") {
        return Err(
            "--gate only applies to the `perf` experiment; add `perf` to the experiment list"
                .to_owned(),
        );
    }
    Ok(())
}

/// The regression tripwire behind `repro --gate`: compares the current
/// results against a committed baseline JSON and fails when any scenario
/// present in both runs below `threshold` × its committed events/s, after
/// scaling the committed figure to this host's speed (paired [`calibrate`]
/// samples: a slower CI runner lowers the bar, a faster one raises it).
pub fn gate(committed_json: &str, current_json: &str, threshold: f64) -> Result<String, String> {
    gate_with_calib(committed_json, current_json, threshold, calibrate())
}

/// [`gate`] with the host calibration sample injected (testable form).
pub fn gate_with_calib(
    committed_json: &str,
    current_json: &str,
    threshold: f64,
    host_calib_secs: f64,
) -> Result<String, String> {
    let committed_calib =
        parse_field(committed_json, "\"measured_secs\": ").unwrap_or(BASELINE_CALIB_SECS);
    // Calibration measures seconds per fixed work unit, so a *slower* host
    // has a larger sample and scales the expected events/s *down*.
    let host_factor = committed_calib / host_calib_secs;
    let committed = parse_runs(committed_json);
    let current = parse_runs(current_json);
    let mut report = format!(
        "perf gate: host speed x{host_factor:.2} vs committed baseline (calib {committed_calib:.3}s then, {host_calib_secs:.3}s now); floor {:.0}% of adjusted events/s\n",
        threshold * 100.0
    );
    let mut compared = 0;
    let mut failed = false;
    // Per-scenario verdicts: every committed scenario gets its own line —
    // a pass, a fail, or an explicit skip. A scenario absent from the
    // current run (e.g. the flagship, which quick mode doesn't time) used
    // to vanish silently, which read as "covered" when it wasn't.
    for (name, base_eps) in &committed {
        let Some((_, cur_eps)) = current.iter().find(|(n, _)| n == name) else {
            let _ = writeln!(report, "  {name}: skipped (not timed by this run mode)");
            continue;
        };
        compared += 1;
        let floor = base_eps * host_factor * threshold;
        let ok = *cur_eps >= floor;
        failed |= !ok;
        let _ = writeln!(
            report,
            "  {name}: {cur_eps:.0} events/s vs floor {floor:.0} (committed {base_eps:.0}) -> {}",
            if ok { "ok" } else { "REGRESSED" }
        );
    }
    // The converse — a freshly timed scenario with no committed floor —
    // also gets called out, so a new scenario can't ride ungated forever.
    for (name, _) in &current {
        if !committed.iter().any(|(n, _)| n == name) {
            let _ = writeln!(
                report,
                "  {name}: no committed floor (re-run `repro perf` and commit the baseline)"
            );
        }
    }
    if compared == 0 {
        return Err(format!(
            "{report}  no scenario common to the committed baseline and the current run\n"
        ));
    }
    if failed {
        Err(report)
    } else {
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desktop_scenario_runs_and_renders_json() {
        // The measurement itself, on the cheap scenario only — the mega
        // scenario belongs to release-mode `repro perf`, not debug tests.
        let (run, _) = measure_paired(&DESKTOP, 1, false);
        assert!(run.completed > 100, "completed {}", run.completed);
        assert!(run.bytes_per_user > 0.0);
        let (table, json) = render(std::slice::from_ref(&run), &[]);
        assert!(table.contains("teastore_desktop_64u_300ms"));
        assert!(table.contains("baseline"));
        assert!(table.contains("B/user"));
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains("\"peak_rss_bytes\""));
        assert!(json.contains("\"bytes_per_user\""));
        assert!(json.contains("\"speedup_vs_baseline\": null"));
    }

    #[test]
    fn mega_scenario_is_coalesced_and_million_user() {
        assert_eq!(MEGA.users, 1_000_000);
        assert_ne!(MEGA.coalesce_ms, 0, "mega must coalesce wakeups");
    }

    #[test]
    fn mega_sharded_scenario_is_fixed_cell_and_ten_million_user() {
        assert_eq!(MEGA_SHARDED.users, 10_000_000);
        assert_eq!(
            MEGA_SHARDED.shards, 8,
            "the cell count is part of the scenario identity; changing it \
             invalidates the committed gate baseline"
        );
        assert_ne!(MEGA_SHARDED.coalesce_ms, 0, "mega must coalesce wakeups");
        // Same per-cell offered load as the serial mega scenario.
        assert_eq!(
            MEGA_SHARDED.users / MEGA_SHARDED.think_ms,
            MEGA.users / MEGA.think_ms
        );
    }

    #[test]
    fn mega_speculative_is_the_sharded_twin_under_speculation() {
        // Same workload and cell count as the conservative scenario, so
        // (by the determinism contract) the simulated columns of the pair
        // must agree and only the sync/wall columns differ.
        assert_eq!(MEGA_SPECULATIVE.users, MEGA_SHARDED.users);
        assert_eq!(MEGA_SPECULATIVE.think_ms, MEGA_SHARDED.think_ms);
        assert_eq!(MEGA_SPECULATIVE.coalesce_ms, MEGA_SHARDED.coalesce_ms);
        assert_eq!(MEGA_SPECULATIVE.shards, MEGA_SHARDED.shards);
        assert_eq!(MEGA_SHARDED.policy, WindowPolicy::Conservative);
        assert!(matches!(
            MEGA_SPECULATIVE.policy,
            WindowPolicy::Speculative { cap } if cap > 1
        ));
    }

    #[test]
    fn sharded_runs_render_sync_columns() {
        let spec = Scenario {
            name: "sync_smoke",
            big_machine: false,
            users: 32,
            think_ms: 10,
            warmup_ms: 100,
            measure_ms: 200,
            coalesce_ms: 0,
            shards: 2,
            policy: WindowPolicy::Speculative { cap: 8 },
        };
        let (run, _) = measure_paired(&spec, 1, false);
        let sync = run.sync.expect("sharded run must report sync stats");
        assert!(sync.barriers > 0);
        let bpss = run.barriers_per_sim_sec.expect("barriers per sim second");
        assert!(bpss > 0.0);
        let (table, json) = render(std::slice::from_ref(&run), &[]);
        assert!(table.contains("sync:"), "table: {table}");
        assert!(json.contains("\"barriers_per_sim_sec\""), "json: {json}");
        assert!(json.contains("\"rollbacks\""), "json: {json}");
        // The gate parser must still find the scenario despite the extra
        // fields.
        assert_eq!(parse_runs(&json).len(), 1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_reads_proc_status() {
        assert!(peak_rss_bytes() > 0, "VmHWM should be nonzero on Linux");
    }

    const COMMITTED: &str = r#"{
  "baseline": { "commit": "abc", "scenario": "flagship", "wall_secs": 1.0, "calib_secs": 0.2 },
  "host_calibration": { "measured_secs": 0.200000, "factor": 1.0, "baseline_wall_secs_adjusted": 1.0, "paired_wall_secs": 1.0 },
  "runs": [
    { "scenario": "desk", "reps": 2, "wall_secs": 1.0, "events": 1000, "events_per_sec": 1000, "completed": 10, "peak_rss_bytes": 1, "bytes_per_user": 1.0 }
  ],
  "speedup_vs_baseline": 1.0
}"#;

    fn current(eps: u64) -> String {
        COMMITTED.replace("\"events_per_sec\": 1000", &format!("\"events_per_sec\": {eps}"))
    }

    #[test]
    fn parse_runs_skips_the_baseline_header() {
        let runs = parse_runs(COMMITTED);
        assert_eq!(runs, vec![("desk".to_owned(), 1000.0)]);
    }

    #[test]
    fn gate_passes_above_and_fails_below_the_floor() {
        // Same host speed (calib 0.2 both sides): floor is 500 events/s.
        assert!(gate_with_calib(COMMITTED, &current(501), 0.5, 0.2).is_ok());
        let err = gate_with_calib(COMMITTED, &current(499), 0.5, 0.2);
        assert!(err.is_err());
        assert!(err.unwrap_err().contains("REGRESSED"));
    }

    #[test]
    fn gate_adjusts_the_floor_for_host_speed() {
        // A 2x-slower host (calib 0.4 vs 0.2) halves the floor to 250.
        assert!(gate_with_calib(COMMITTED, &current(260), 0.5, 0.4).is_ok());
        assert!(gate_with_calib(COMMITTED, &current(240), 0.5, 0.4).is_err());
    }

    #[test]
    fn gate_rejects_disjoint_scenario_sets() {
        let other = COMMITTED.replace("\"scenario\": \"desk\"", "\"scenario\": \"mega\"");
        assert!(gate_with_calib(COMMITTED, &other, 0.5, 0.2).is_err());
    }

    #[test]
    fn gate_names_skipped_and_ungated_scenarios() {
        // Two committed scenarios, one timed by the current (quick-style)
        // run: the missing one must appear as an explicit skip line, not
        // vanish.
        let committed = COMMITTED.replace(
            "\"runs\": [\n",
            "\"runs\": [\n    { \"scenario\": \"flagship_only_in_full\", \"reps\": 1, \"wall_secs\": 1.0, \"events\": 1000, \"events_per_sec\": 1000, \"completed\": 10, \"peak_rss_bytes\": 1, \"bytes_per_user\": 1.0 },\n",
        );
        let report = gate_with_calib(&committed, &current(900), 0.5, 0.2).unwrap();
        assert!(
            report.contains("flagship_only_in_full: skipped (not timed by this run mode)"),
            "report: {report}"
        );
        assert!(report.contains("desk: 900"), "report: {report}");
        // And a freshly added scenario with no committed floor is called
        // out rather than riding ungated.
        let current_extra = current(900).replace(
            "\"runs\": [\n",
            "\"runs\": [\n    { \"scenario\": \"brand_new\", \"reps\": 1, \"wall_secs\": 1.0, \"events\": 1000, \"events_per_sec\": 1000, \"completed\": 10, \"peak_rss_bytes\": 1, \"bytes_per_user\": 1.0 },\n",
        );
        let report = gate_with_calib(COMMITTED, &current_extra, 0.5, 0.2).unwrap();
        assert!(report.contains("brand_new: no committed floor"), "report: {report}");
    }

    #[test]
    fn read_baseline_reports_a_missing_file_instead_of_passing() {
        let path = std::path::Path::new("results/this_baseline_does_not_exist.json");
        let err = read_baseline(path).unwrap_err();
        assert!(err.contains("cannot read baseline"), "message: {err}");
        assert!(err.contains("this_baseline_does_not_exist.json"));
        assert!(err.contains("repro perf"), "must say how to record one: {err}");
    }

    #[test]
    fn gate_flag_without_perf_is_an_error_not_a_silent_pass() {
        let wanted = vec!["e3".to_owned(), "e8".to_owned()];
        let err = gate_requires_perf(&wanted, true).unwrap_err();
        assert!(err.contains("perf"), "message: {err}");
        assert!(gate_requires_perf(&wanted, false).is_ok());
        let with_perf = vec!["e3".to_owned(), "perf".to_owned()];
        assert!(gate_requires_perf(&with_perf, true).is_ok());
    }
}
