//! One function per reconstructed experiment (E1–E17) plus the ablations.
//!
//! Each function returns a result struct carrying both the key numbers (for
//! assertions in tests and EXPERIMENTS.md bookkeeping) and a rendered text
//! table (what the `repro` binary prints).

use cputopo::{enumerate, TopologyBuilder};
use loadgen::ClosedLoop;
use microsvc::{
    mix_seed, AdmissionPolicy, AppSpec, BreakerPolicy, CallNode, Demand, Deployment, Engine,
    EngineParams, FaultPlan, InstanceConfig, InstanceId, LbPolicy, OverloadParams, PriorityPolicy,
    ResilienceParams, RetryBudgetPolicy, RetryPolicy, RunReport, ServiceId, ServiceSpec,
    ShardSpec, ShardedRun, SyncStats, Tracer, WindowPolicy, DEFAULT_LOOKAHEAD_CAP,
};
use scaleup::placement::{self, Objective, Policy};
use scaleup::scaling::{self, ScalePoint};
use scaleup::{tuner, Lab, UslFit};
use simcore::{SimDuration, SimTime, SnapReader, SnapWriter};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use teastore::TeaStore;
use uarch::comparison;

/// Experiment configuration: full paper machine or a quick smoke setup.
#[derive(Debug, Clone)]
pub struct Config {
    /// The configured runner.
    pub lab: Lab,
    /// The TeaStore model under test.
    pub store: TeaStore,
    /// Instance budget used to derive the tuned baseline.
    pub baseline_budget: usize,
    /// CPU counts for the E4 sweep.
    pub cpu_counts: Vec<usize>,
    /// User populations for the E3/E5 sweeps.
    pub user_sweep: Vec<u64>,
    /// Replica counts for the E6/E7 sweeps.
    pub replica_sweep: Vec<usize>,
    /// Closed-loop populations for the E24 mega-scale sweep.
    pub mega_users: Vec<u64>,
    /// Closed-loop populations for the E28 shard-scaling sweep.
    pub shard_users: Vec<u64>,
    /// Plans the `repro chaos` search samples (shrinking included).
    pub chaos_plans: u64,
    /// Plans per arm of the E29 mitigation-grid sweep (no shrinking).
    pub chaos_sweep_plans: u64,
    /// Open-loop measurement window of the chaos runs.
    pub chaos_measure: SimDuration,
}

impl Config {
    /// The full 2P/256-CPU configuration the headline numbers use.
    pub fn paper(seed: u64) -> Self {
        Config {
            lab: Lab::paper_machine(seed).with_users(4096),
            store: TeaStore::browse(),
            baseline_budget: 64,
            cpu_counts: vec![8, 16, 32, 64, 96, 128, 160, 192, 224, 256],
            user_sweep: vec![128, 256, 512, 1024, 2048, 4096],
            replica_sweep: vec![1, 2, 4, 8, 16, 24],
            mega_users: vec![1_000, 10_000, 100_000, 1_000_000],
            shard_users: vec![1_000_000, 10_000_000],
            chaos_plans: 48,
            chaos_sweep_plans: 24,
            chaos_measure: SimDuration::from_secs(6),
        }
    }

    /// A fast desktop-scale configuration with the same experiment shapes.
    pub fn quick(seed: u64) -> Self {
        Config {
            lab: Lab::small(seed).with_users(128),
            store: TeaStore::with_demand_scale(0.25),
            baseline_budget: 12,
            cpu_counts: vec![2, 4, 8, 16],
            user_sweep: vec![16, 32, 64, 128],
            replica_sweep: vec![1, 2, 4],
            mega_users: vec![1_000, 10_000, 100_000],
            shard_users: vec![10_000, 100_000],
            chaos_plans: 24,
            chaos_sweep_plans: 10,
            chaos_measure: SimDuration::from_secs(4),
        }
    }

    /// The tuned per-service replica counts used as the baseline everywhere.
    pub fn baseline_replicas(&self) -> Vec<usize> {
        tuner::proportional_replicas(self.store.app(), self.baseline_budget)
    }
}

fn ratio_pct(new: f64, old: f64) -> f64 {
    100.0 * (new / old - 1.0)
}

// ------------------------------------------------------------------ E1 / E2

/// E1 — the platform-configuration table.
pub fn e1(config: &Config) -> String {
    format!(
        "E1: platform configuration\n{}\n",
        config.lab.topo.summary()
    )
}

/// E2 — TeaStore services, profiles and the request mix.
pub fn e2(config: &Config) -> String {
    let mut out = format!("E2: TeaStore services\n{}", config.store.service_table());
    out.push_str("\nrequest mix (browse profile):\n");
    for class in config.store.app().classes() {
        let _ = writeln!(out, "  {:<12} {:>5.1}%", class.name, class.weight * 100.0);
    }
    out
}

// ---------------------------------------------------------------------- E3

/// E3 result: throughput/latency vs. closed-loop users.
#[derive(Debug, Clone)]
pub struct LoadCurve {
    /// `(users, report)` pairs in sweep order.
    pub points: Vec<(u64, RunReport)>,
    /// Rendered table.
    pub table: String,
}

/// E3 — throughput and latency vs. offered closed-loop load (tuned baseline).
pub fn e3(config: &Config) -> LoadCurve {
    let replicas = config.baseline_replicas();
    let points: Vec<(u64, RunReport)> = scaleup::par::map(config.user_sweep.clone(), |users| {
        let lab = config.lab.clone().with_users(users);
        (users, lab.run_policy(&config.store, Policy::Unpinned, &replicas))
    });
    let mut table = String::from(
        "E3: load curve (tuned unpinned baseline)\n users       req/s     mean      p95      p99   util%\n",
    );
    for (users, report) in &points {
        let _ = writeln!(
            table,
            "{:>6} {:>11.0} {:>8} {:>8} {:>8} {:>6.1}",
            users,
            report.throughput_rps,
            report.mean_latency,
            report.latency_p95,
            report.latency_p99,
            report.cpu_utilization * 100.0
        );
    }
    LoadCurve { points, table }
}

// ---------------------------------------------------------------------- E4

/// E4 result: the scale-up curve with its USL fit.
#[derive(Debug, Clone)]
pub struct ScaleupCurve {
    /// Points of the sweep.
    pub points: Vec<ScalePoint>,
    /// USL fit over the points.
    pub fit: UslFit,
    /// Rendered table.
    pub table: String,
}

/// E4 — throughput vs. enabled logical CPUs (cores-first enumeration).
pub fn e4(config: &Config) -> ScaleupCurve {
    let replicas = config.baseline_replicas();
    let order = enumerate::cores_first(&config.lab.topo);
    let points: Vec<ScalePoint> = scaleup::par::map(config.cpu_counts.clone(), |count| {
        // Scale offered load with machine size so small masks saturate
        // without drowning in queueing.
        let users = (count as u64 * 24).clamp(64, config.lab.users);
        let lab = config.lab.clone().with_users(users);
        let mut pts =
            scaling::throughput_vs_cpus(&lab, config.store.app(), &order, &[count], &replicas);
        pts.remove(0)
    });
    let fit = scaling::fit_curve(&points);
    let mut table = scaling::curve_table("E4: scale-up — throughput vs logical CPUs", &points);
    let _ = writeln!(
        table,
        "USL fit: λ={:.1} req/s/cpu σ={:.4} κ={:.6} R²={:.3} peak≈{}",
        fit.lambda,
        fit.sigma,
        fit.kappa,
        fit.r_squared,
        fit.peak()
            .map(|p| format!("{p:.0} cpus"))
            .unwrap_or_else(|| "monotone".to_owned()),
    );
    ScaleupCurve { points, fit, table }
}

// ---------------------------------------------------------------------- E5

/// E5 — per-service CPU utilization vs. load.
pub fn e5(config: &Config) -> String {
    let replicas = config.baseline_replicas();
    let names: Vec<String> = config
        .store
        .app()
        .services()
        .iter()
        .map(|s| s.name.clone())
        .collect();
    let mut out = String::from("E5: per-service busy CPUs vs load\n users ");
    for n in &names {
        let _ = write!(out, "{:>12}", n);
    }
    out.push('\n');
    let reports = scaleup::par::map(config.user_sweep.clone(), |users| {
        let lab = config.lab.clone().with_users(users);
        lab.run_policy(&config.store, Policy::Unpinned, &replicas)
    });
    for (&users, report) in config.user_sweep.iter().zip(&reports) {
        let _ = write!(out, "{users:>6} ");
        for s in &report.services {
            let _ = write!(out, "{:>12.1}", s.avg_busy_cpus);
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------- E6

/// E6 result: per-service scaling curves and fits.
#[derive(Debug, Clone)]
pub struct ServiceScaling {
    /// `(service name, points, fit)` per scaled service.
    pub services: Vec<(String, Vec<ScalePoint>, UslFit)>,
    /// Rendered table.
    pub table: String,
}

/// E6 — per-service scaling: replicate one service at a time, fit the USL.
pub fn e6(config: &Config) -> ServiceScaling {
    let base = config.baseline_replicas();
    let s = config.store.services();
    let scaled: Vec<(&str, ServiceId)> = vec![
        ("webui", s.webui),
        ("auth", s.auth),
        ("persistence", s.persistence),
        ("recommender", s.recommender),
        ("image", s.image),
    ];
    let mut services = Vec::new();
    let mut table = String::from(
        "E6: per-service scaling (USL per service)\nservice        λ(req/s/repl)        σ          κ       R²   peak\n",
    );
    for (name, id) in scaled {
        let points = scaling::service_scaling(
            &config.lab,
            config.store.app(),
            id,
            &config.replica_sweep,
            &base,
        );
        let fit = scaling::fit_curve(&points);
        let _ = writeln!(
            table,
            "{:<14} {:>12.1} {:>10.4} {:>10.6} {:>8.3}   {}",
            name,
            fit.lambda,
            fit.sigma,
            fit.kappa,
            fit.r_squared,
            fit.peak()
                .map(|p| format!("{p:.0}"))
                .unwrap_or_else(|| "—".to_owned()),
        );
        services.push((name.to_owned(), points, fit));
    }
    ServiceScaling { services, table }
}

// ---------------------------------------------------------------------- E7

/// E7 — replica tuning of the bottleneck service (WebUI sweep + tuner run).
pub fn e7(config: &Config) -> String {
    let base = config.baseline_replicas();
    let webui = config.store.services().webui;
    let b = base[webui.index()];
    let mut counts: Vec<usize> = [b / 4, b / 2, (3 * b) / 4, b, b + b / 4, b + b / 2]
        .into_iter()
        .map(|c| c.max(1))
        .collect();
    counts.dedup();
    let points = scaling::service_scaling(&config.lab, config.store.app(), webui, &counts, &base);
    let mut out = scaling::curve_table("E7: WebUI replica sweep (others at baseline)", &points);
    // The measured-feedback tuner, starting from a deliberately small seed.
    let seed = tuner::proportional_replicas(config.store.app(), config.baseline_budget / 2);
    let outcome = tuner::tune(&config.lab, &config.store, &seed, 4);
    let _ = writeln!(
        out,
        "tuner: seed {:?} -> tuned {:?}\n       throughput trajectory: {:?}",
        seed,
        outcome.replicas,
        outcome
            .throughput_history
            .iter()
            .map(|t| t.round())
            .collect::<Vec<_>>(),
    );
    out
}

// ---------------------------------------------------------------------- E8

/// E8 result: the placement-policy comparison (headline).
#[derive(Debug, Clone)]
pub struct PlacementComparison {
    /// `(policy name, first-seed report)` rows.
    pub rows: Vec<(String, RunReport)>,
    /// Replicated throughput summaries (mean ± CI over the seed set).
    pub throughput: Vec<scaleup::replicate::Summary>,
    /// Throughput uplift of topology-aware over the tuned baseline, percent
    /// (on replicated means).
    pub uplift_pct: f64,
    /// Mean-latency reduction of topology-aware over the baseline, percent.
    pub latency_reduction_pct: f64,
    /// Rendered table.
    pub table: String,
}

/// E8 — placement policies at saturation (headline: ≈ +22% throughput).
///
/// Each policy is replicated under three seeds (run in parallel); the table
/// reports the mean with a 95% confidence half-width.
pub fn e8(config: &Config) -> PlacementComparison {
    let replicas = config.baseline_replicas();
    let seeds = [config.lab.seed, config.lab.seed + 1, config.lab.seed + 2];
    let policies: Vec<(Policy, Vec<usize>)> = vec![
        (Policy::Unpinned, replicas.clone()),
        (Policy::Packed, replicas.clone()),
        (Policy::SpreadSockets, replicas.clone()),
        (Policy::CcxAware, replicas.clone()),
        (Policy::NumaAware, replicas.clone()),
        (Policy::TopologyAware { ccxs: None }, vec![]),
    ];
    let mut rows = Vec::new();
    let mut throughput = Vec::new();
    let mut latency_means = Vec::new();
    for (policy, reps) in policies {
        let reports =
            scaleup::replicate::run_seeds(&config.lab, &config.store, policy, &reps, &seeds);
        let x: Vec<f64> = reports.iter().map(|r| r.throughput_rps).collect();
        let lat: Vec<f64> = reports
            .iter()
            .map(|r| r.mean_latency.as_micros_f64())
            .collect();
        throughput.push(scaleup::replicate::Summary::of(&x));
        latency_means.push(scaleup::replicate::Summary::of(&lat));
        rows.push((
            policy.name().to_owned(),
            reports.into_iter().next().expect("at least one seed"),
        ));
    }
    let uplift_pct = ratio_pct(
        throughput.last().expect("has rows").mean,
        throughput[0].mean,
    );
    let latency_reduction_pct = -ratio_pct(
        latency_means.last().expect("has rows").mean,
        latency_means[0].mean,
    );
    let mut table = String::from(
        "E8: placement policies at saturation (3 seeds each)\npolicy                        req/s        mean µs      p95    util%   vs baseline\n",
    );
    for (i, (name, r)) in rows.iter().enumerate() {
        let _ = writeln!(
            table,
            "{:<18} {:>16} {:>14} {:>8} {:>7.1} {:>+11.1}%",
            name,
            throughput[i].display(""),
            latency_means[i].display(""),
            r.latency_p95,
            r.cpu_utilization * 100.0,
            ratio_pct(throughput[i].mean, throughput[0].mean),
        );
    }
    let _ = writeln!(
        table,
        "headline: throughput {uplift_pct:+.1}%, mean latency {:+.1}% (paper: +22%, −18%)",
        -latency_reduction_pct
    );
    PlacementComparison {
        rows,
        throughput,
        uplift_pct,
        latency_reduction_pct,
        table,
    }
}

// ---------------------------------------------------------------------- E9

/// E9 result: latency percentiles at matched offered load.
#[derive(Debug, Clone)]
pub struct LatencyComparison {
    /// `(fraction of baseline saturation, baseline report, optimized report)`.
    pub points: Vec<(f64, RunReport, RunReport)>,
    /// Mean latency reduction at the highest swept load, percent.
    pub mean_reduction_pct: f64,
    /// Rendered table.
    pub table: String,
}

/// E9 — latency vs. matched offered load (open loop), baseline vs.
/// topology-aware. Thread-pool pooling keeps baseline latency flat until
/// ~90% of saturation; the headline −18% appears near the peak operating
/// point (95%), where the baseline queues and the optimized placement still
/// has headroom.
pub fn e9(config: &Config) -> LatencyComparison {
    let replicas = config.baseline_replicas();
    let sat = config
        .lab
        .run_policy(&config.store, Policy::Unpinned, &replicas)
        .throughput_rps;

    let fractions = [0.70, 0.85, 0.95];
    let points: Vec<(f64, RunReport, RunReport)> =
        scaleup::par::map(fractions.to_vec(), |f| {
            let rate = sat * f;
            let base_placed =
                Policy::Unpinned.deploy(config.store.app(), &config.lab.topo, &replicas);
            let baseline = config.lab.run_app_open(
                config.store.app(),
                base_placed.deployment,
                base_placed.lb,
                rate,
            );
            let topo_placed = Policy::TopologyAware { ccxs: None }.deploy(
                config.store.app(),
                &config.lab.topo,
                &[],
            );
            let optimized = config.lab.run_app_open(
                config.store.app(),
                topo_placed.deployment,
                topo_placed.lb,
                rate,
            );
            (f, baseline, optimized)
        });
    let mut table = format!(
        "E9: latency at matched open load (baseline saturation {sat:.0} req/s)\n  load   config               mean      p50      p95      p99\n"
    );
    for (f, baseline, optimized) in &points {
        for (name, r) in [("baseline", baseline), ("topology-aware", optimized)] {
            let _ = writeln!(
                table,
                "  {:>3.0}%   {:<18} {:>8} {:>8} {:>8} {:>8}",
                f * 100.0,
                name,
                r.mean_latency,
                r.latency_p50,
                r.latency_p95,
                r.latency_p99
            );
        }
    }
    let (_, base_hi, opt_hi) = points.last().expect("swept at least one load");
    let mean_reduction_pct = -ratio_pct(
        opt_hi.mean_latency.as_secs_f64(),
        base_hi.mean_latency.as_secs_f64(),
    );
    let _ = writeln!(
        table,
        "headline at 95% load: mean latency {:+.1}% (paper: −18%)",
        -mean_reduction_pct
    );
    LatencyComparison {
        points,
        mean_reduction_pct,
        table,
    }
}

// --------------------------------------------------------------------- E10

/// E10 result: the SMT study.
#[derive(Debug, Clone)]
pub struct SmtStudy {
    /// TeaStore throughput with SMT2 (tuned baseline placement).
    pub smt2_rps: f64,
    /// TeaStore throughput with SMT off.
    pub smt1_rps: f64,
    /// Compute-bound contrast throughput with SMT2.
    pub compute_smt2_rps: f64,
    /// Compute-bound contrast throughput with SMT off.
    pub compute_smt1_rps: f64,
    /// Rendered table.
    pub table: String,
}

fn smt_off_variant(topo: &cputopo::Topology) -> Arc<cputopo::Topology> {
    let spec = topo.spec().clone();
    Arc::new(
        TopologyBuilder::new(&format!("{} (SMT off)", spec.name))
            .sockets(spec.sockets)
            .numa_per_socket(spec.numa_per_socket)
            .ccds_per_numa(spec.ccds_per_numa)
            .ccxs_per_ccd(spec.ccxs_per_ccd)
            .cores_per_ccx(spec.cores_per_ccx)
            .threads_per_core(1)
            .freq_ghz(spec.freq_ghz)
            .caches(spec.caches)
            .build(),
    )
}

/// A CPU-bound single-service contrast workload (SPECint-rate-like).
fn compute_bound_app() -> AppSpec {
    let mut app = AppSpec::new();
    let svc =
        app.add_service(ServiceSpec::new("kernel", comparison::spec_int_like()).with_threads(4));
    app.add_class("unit", 1.0, CallNode::leaf(svc, Demand::fixed_us(500.0)));
    app
}

/// E10 — SMT on vs. off at equal core count: TeaStore (tuned placement)
/// vs. a compute-bound contrast. Microservices bank much less of SMT's
/// nominal ~1.24× than compute kernels do.
pub fn e10(config: &Config) -> SmtStudy {
    let smt1_topo = smt_off_variant(&config.lab.topo);
    // TeaStore rows use the topology-aware placement so the comparison is
    // not polluted by unpinned-scheduler noise.
    let tea = |topo: &Arc<cputopo::Topology>| {
        let mut lab = config.lab.clone();
        lab.topo = topo.clone();
        lab.run_policy(&config.store, Policy::TopologyAware { ccxs: None }, &[])
            .throughput_rps
    };
    let smt2_rps = tea(&config.lab.topo);
    let smt1_rps = tea(&smt1_topo);
    // Unpinned contrast: without placement control, SMT's extra threads are
    // burned on cache interference and migrations.
    let replicas = config.baseline_replicas();
    let tea_unpinned = |topo: &Arc<cputopo::Topology>| {
        let mut lab = config.lab.clone();
        lab.topo = topo.clone();
        lab.run_policy(&config.store, Policy::Unpinned, &replicas)
            .throughput_rps
    };
    let unpinned_smt2 = tea_unpinned(&config.lab.topo);
    let unpinned_smt1 = tea_unpinned(&smt1_topo);

    // Compute contrast: one instance per CCX, pool = its logical CPUs.
    let compute = |topo: &Arc<cputopo::Topology>| {
        let app = compute_bound_app();
        let per_ccx = topo.num_cpus() / topo.num_ccxs();
        let mut deployment = Deployment::empty(&app);
        for ccx in 0..topo.num_ccxs() as u32 {
            deployment.add_instance(
                ServiceId(0),
                InstanceConfig {
                    affinity: topo.cpus_in_ccx(cputopo::CcxId(ccx)).clone(),
                    threads: per_ccx,
                    mem_node: None,
                },
            );
        }
        let mut lab = config.lab.clone();
        lab.topo = topo.clone();
        lab.run_app(&app, deployment, LbPolicy::LeastOutstanding)
            .throughput_rps
    };
    let compute_smt2_rps = compute(&config.lab.topo);
    let compute_smt1_rps = compute(&smt1_topo);

    let table = format!(
        "E10: SMT study at equal core count\nworkload               SMT1 req/s   SMT2 req/s   SMT gain\n{:<20} {:>12.0} {:>12.0} {:>9.2}×\n{:<20} {:>12.0} {:>12.0} {:>9.2}×\n{:<20} {:>12.0} {:>12.0} {:>9.2}×\n(nominal SMT2 core throughput is ~1.24× in the µarch model)\n",
        "teastore (unpinned)",
        unpinned_smt1,
        unpinned_smt2,
        unpinned_smt2 / unpinned_smt1,
        "teastore (topo)",
        smt1_rps,
        smt2_rps,
        smt2_rps / smt1_rps,
        "compute-bound",
        compute_smt1_rps,
        compute_smt2_rps,
        compute_smt2_rps / compute_smt1_rps,
    );
    SmtStudy {
        smt2_rps,
        smt1_rps,
        compute_smt2_rps,
        compute_smt1_rps,
        table,
    }
}

// --------------------------------------------------------------------- E11

/// E11 result: the NUMA locality study.
#[derive(Debug, Clone)]
pub struct NumaStudy {
    /// Throughput with memory local to the compute socket.
    pub local_rps: f64,
    /// Throughput with memory on the remote socket.
    pub remote_rps: f64,
    /// Rendered table.
    pub table: String,
}

/// E11 — local vs. remote memory for a memory-sensitive tier pinned to one
/// socket. Requires a multi-NUMA machine (skipped with a note otherwise).
pub fn e11(config: &Config) -> NumaStudy {
    let topo = &config.lab.topo;
    if topo.num_numas() < 2 {
        return NumaStudy {
            local_rps: 0.0,
            remote_rps: 0.0,
            table: "E11: skipped — machine has a single NUMA node\n".to_owned(),
        };
    }
    // A data-tier-only application pinned to socket 0.
    let mut app = AppSpec::new();
    let svc = app.add_service(
        ServiceSpec::new("datatier", uarch::ServiceProfile::database("datatier")).with_threads(16),
    );
    app.add_class(
        "query",
        1.0,
        CallNode::leaf(svc, Demand::lognormal_us(600.0, 0.35)),
    );
    let socket0 = topo.cpus_in_socket(cputopo::SocketId(0)).clone();
    let run_with_mem = |node: u32| {
        let mut deployment = Deployment::empty(&app);
        for _ in 0..8 {
            deployment.add_instance(
                ServiceId(0),
                InstanceConfig {
                    affinity: socket0.clone(),
                    threads: 32,
                    mem_node: Some(cputopo::NumaId(node)),
                },
            );
        }
        let lab = config.lab.clone().with_users(1024);
        lab.run_app(&app, deployment, LbPolicy::LeastOutstanding)
    };
    let local = run_with_mem(0);
    let remote = run_with_mem((topo.num_numas() - 1) as u32);
    let slowdown = local.throughput_rps / remote.throughput_rps;
    let table = format!(
        "E11: NUMA locality (data tier pinned to socket 0)\nlocal memory:  {:>8.0} req/s  mean {}\nremote memory: {:>8.0} req/s  mean {}\nlocal/remote speedup: {slowdown:.3}×\n",
        local.throughput_rps, local.mean_latency, remote.throughput_rps, remote.mean_latency,
    );
    NumaStudy {
        local_rps: local.throughput_rps,
        remote_rps: remote.throughput_rps,
        table,
    }
}

// --------------------------------------------------------------------- E12

/// E12 — microarchitectural characterization: TeaStore services under load
/// vs. conventional reference workloads.
pub fn e12(config: &Config) -> String {
    let replicas = config.baseline_replicas();
    let report = config
        .lab
        .run_policy(&config.store, Policy::Unpinned, &replicas);
    let mut out = String::from(
        "E12: microarchitectural characterization\nworkload             IPC   L2MPKI   L3MPKI   BRMPKI   FE-bound%  kernel%\n",
    );
    for s in &report.services {
        if s.counters.instructions == 0 {
            continue;
        }
        let m = s.metrics;
        let _ = writeln!(
            out,
            "{:<18} {:>5.2} {:>8.1} {:>8.2} {:>8.1} {:>10.1} {:>8.1}",
            s.name,
            m.ipc,
            m.l2_mpki,
            m.l3_mpki,
            m.branch_mpki,
            m.frontend_bound * 100.0,
            m.kernel_frac * 100.0
        );
    }
    out.push_str("--- reference workloads (solo, reference conditions) ---\n");
    let params = config.lab.engine_params.uarch.clone();
    for profile in comparison::all_reference_workloads() {
        let m = comparison::solo_run(&profile, 1_000_000_000, &params).derive();
        let _ = writeln!(
            out,
            "{:<18} {:>5.2} {:>8.1} {:>8.2} {:>8.1} {:>10.1} {:>8.1}",
            profile.name,
            m.ipc,
            m.l2_mpki,
            m.l3_mpki,
            m.branch_mpki,
            m.frontend_bound * 100.0,
            m.kernel_frac * 100.0
        );
    }
    out
}

// --------------------------------------------------------------------- E13

/// E13 — OS-level behaviour per placement policy.
pub fn e13(config: &Config) -> String {
    let replicas = config.baseline_replicas();
    let policies: Vec<(Policy, Vec<usize>)> = vec![
        (Policy::Unpinned, replicas.clone()),
        (Policy::CcxAware, replicas.clone()),
        (Policy::NumaAware, replicas),
        (Policy::TopologyAware { ccxs: None }, vec![]),
    ];
    let mut out = String::from(
        "E13: scheduler behaviour\npolicy               csw/s      mig/s    steals/s   wakeups/s\n",
    );
    let rows = scaleup::par::map(policies, |(policy, reps)| {
        (policy, config.lab.run_policy(&config.store, policy, &reps))
    });
    for (policy, r) in rows {
        let secs = r.window.as_secs_f64();
        let _ = writeln!(
            out,
            "{:<18} {:>8.0} {:>10.0} {:>11.0} {:>11.0}",
            policy.name(),
            r.sched.context_switches as f64 / secs,
            r.sched.migrations as f64 / secs,
            r.sched.steals as f64 / secs,
            r.sched.wakeups as f64 / secs,
        );
    }
    out
}

// ----------------------------------------------------------- E14 / E15

/// E14 — opportunistic frequency boost: does it change the scale-up story?
///
/// Runs the tuned baseline and the topology-aware placement, each with the
/// boost model off (calibrated default) and with a Rome-like curve, at a
/// moderate and a saturating load. Boost helps exactly where the machine is
/// underused — it cannot rescue a saturated configuration.
pub fn e14(config: &Config) -> String {
    let replicas = config.baseline_replicas();
    let moderate_users = config.lab.users / 8;
    let mut out = String::from(
        "E14: frequency boost (extension)\nload       config               boost      req/s       mean\n",
    );
    let mut cells = Vec::new();
    for (load_name, users) in [
        ("moderate", moderate_users),
        ("saturating", config.lab.users),
    ] {
        for (policy_name, policy, reps) in [
            ("baseline", Policy::Unpinned, replicas.clone()),
            ("topo", Policy::TopologyAware { ccxs: None }, vec![]),
        ] {
            for (boost_name, boost) in [
                ("flat", uarch::BoostModel::Flat),
                ("zen2", uarch::BoostModel::zen2_like()),
            ] {
                cells.push((load_name, users, policy_name, policy, reps.clone(), boost_name, boost));
            }
        }
    }
    let rows = scaleup::par::map(cells, |(load_name, users, policy_name, policy, reps, boost_name, boost)| {
        let mut lab = config.lab.clone().with_users(users);
        lab.engine_params.uarch.boost = boost;
        let r = lab.run_policy(&config.store, policy, &reps);
        (load_name, policy_name, boost_name, r)
    });
    for (load_name, policy_name, boost_name, r) in rows {
        let _ = writeln!(
            out,
            "{:<10} {:<18} {:<8} {:>8.0} {:>10}",
            load_name, policy_name, boost_name, r.throughput_rps, r.mean_latency
        );
    }
    out
}

/// E15 result: simulator vs. analytic MVA.
#[derive(Debug, Clone)]
pub struct MvaValidation {
    /// `(users, simulated rps, predicted rps)` per sweep point.
    pub points: Vec<(u64, f64, f64)>,
    /// Maximum relative error over the low-load half of the sweep.
    pub low_load_max_err: f64,
    /// Rendered table.
    pub table: String,
}

/// E15 — validation: the simulator against exact MVA on the same
/// configuration. At low load (no contention) the two must agree closely;
/// at saturation the analytic model over-predicts by exactly the contention
/// effects (SMT, L3, NUMA, switches) the simulator adds.
pub fn e15(config: &Config) -> MvaValidation {
    use scaleup::qnmodel::{ClosedModel, Station};
    let replicas = config.baseline_replicas();
    let app = config.store.app();
    let demand = app.mean_demand_per_service_us();

    // Stations: one per demanded service; servers = the thread-pool total
    // (the binding resource of the unpinned baseline).
    let mut model = ClosedModel::new(config.lab.think);
    for (svc, spec) in app.services().iter().enumerate() {
        if demand[svc] <= 0.0 {
            continue;
        }
        let servers = replicas[svc] * spec.default_threads;
        model = model.station(Station::new(
            &spec.name,
            SimDuration::from_micros_f64(demand[svc]),
            servers,
        ));
    }
    // Pure delay per request: two client legs plus the RPC wire time of the
    // average call tree (same-socket latency both ways per call).
    let calls_per_request: f64 = {
        let total_w: f64 = app.classes().iter().map(|c| c.weight).sum();
        app.classes()
            .iter()
            .map(|c| (c.root.node_count() - 1) as f64 * c.weight)
            .sum::<f64>()
            / total_w
    };
    let rpc_leg = config.lab.engine_params.uarch.rpc_latency_same_socket;
    let delay = config.lab.engine_params.client_net_latency * 2
        + SimDuration::from_nanos((rpc_leg.as_nanos() as f64 * 2.0 * calls_per_request) as u64);
    let model = model.with_delay(delay);

    // The station model captures software pools; the hardware adds a second
    // ceiling the analytic model must respect: the machine can retire at
    // most `effective_cpus / demand_per_request` requests per second
    // (cores × ~1.24 SMT2 aggregate; the utilization law).
    let total_demand_us: f64 = demand.iter().sum();
    let topo = &config.lab.topo;
    let smt_aggregate = if topo.spec().threads_per_core >= 2 {
        1.24
    } else {
        1.0
    };
    let effective_cpus = topo.num_cores() as f64 * smt_aggregate;
    let cpu_bound_rps = effective_cpus / (total_demand_us / 1e6);

    let mut points = Vec::new();
    let mut table = format!(
        "E15: simulator vs analytic MVA (tuned unpinned baseline)\n(CPU capacity bound: {cpu_bound_rps:.0} req/s)\n users    sim req/s    MVA req/s    MVA/sim\n",
    );
    let sims = scaleup::par::map(config.user_sweep.clone(), |users| {
        let lab = config.lab.clone().with_users(users);
        lab.run_policy(&config.store, Policy::Unpinned, &replicas)
            .throughput_rps
    });
    for (&users, &sim) in config.user_sweep.iter().zip(&sims) {
        let mva = model
            .solve(users as usize)
            .throughput_rps
            .min(cpu_bound_rps);
        let _ = writeln!(
            table,
            "{:>6} {:>12.0} {:>12.0} {:>10.2}",
            users,
            sim,
            mva,
            mva / sim
        );
        points.push((users, sim, mva));
    }
    let low_half = points.len().div_ceil(2);
    let low_load_max_err = points[..low_half]
        .iter()
        .map(|&(_, sim, mva)| ((mva - sim) / sim).abs())
        .fold(0.0f64, f64::max);
    let _ = writeln!(
        table,
        "max relative error over the low-load half: {:.1}% (contention-free regime)",
        low_load_max_err * 100.0
    );
    let _ = writeln!(
        table,
        "(the saturated-regime gap is the contention the simulator models and MVA cannot)"
    );
    MvaValidation {
        points,
        low_load_max_err,
        table,
    }
}

// --------------------------------------------------------------------- E16

/// E16 result: mix-sensitivity study.
#[derive(Debug, Clone)]
pub struct MixSensitivity {
    /// `(mix name, baseline rps, topology-aware rps, uplift %)`.
    pub rows: Vec<(String, f64, f64, f64)>,
    /// Rendered table.
    pub table: String,
}

/// E16 — (extension) does the technique survive a different request mix?
///
/// The browse profile makes WebUI the bottleneck; a login storm moves it to
/// Auth (BCrypt), a sale to the order path. The topology-aware policy
/// re-derives demand-proportional replication from each mix, so the uplift
/// over a per-mix-tuned unpinned baseline should persist.
pub fn e16(config: &Config) -> MixSensitivity {
    use teastore::MixProfile;
    let mut rows = Vec::new();
    let mut table = String::from(
        "E16: workload-mix sensitivity\nmix           baseline req/s   topo req/s     uplift\n",
    );
    let scale = config
        .store
        .app()
        .mean_demand_per_service_us()
        .iter()
        .sum::<f64>()
        / TeaStore::browse()
            .app()
            .mean_demand_per_service_us()
            .iter()
            .sum::<f64>();
    let mixes = vec![
        ("browse", MixProfile::Browse),
        ("buy-heavy", MixProfile::BuyHeavy),
        ("login-storm", MixProfile::LoginStorm),
    ];
    let measured = scaleup::par::map(mixes, |(name, mix)| {
        let store = TeaStore::with_options(mix, scale);
        let replicas = tuner::proportional_replicas(store.app(), config.baseline_budget);
        let baseline = config
            .lab
            .run_policy(&store, Policy::Unpinned, &replicas)
            .throughput_rps;
        let topo = config
            .lab
            .run_policy(&store, Policy::TopologyAware { ccxs: None }, &[])
            .throughput_rps;
        (name, baseline, topo)
    });
    for (name, baseline, topo) in measured {
        let uplift = ratio_pct(topo, baseline);
        let _ = writeln!(
            table,
            "{:<12} {:>14.0} {:>12.0} {:>+9.1}%",
            name, baseline, topo, uplift
        );
        rows.push((name.to_owned(), baseline, topo, uplift));
    }
    MixSensitivity { rows, table }
}

// --------------------------------------------------------------------- E17

/// E17 — (extension) which CPUs should a half-machine mask contain?
///
/// "Give the app 64 CPUs" is ambiguous: 64 distinct cores across both
/// sockets, 32 cores with both hyperthreads, one socket's worth, …
/// Practitioners build these masks with `taskset`; this experiment runs the
/// tuned baseline confined to the first 64 CPUs of each enumeration order.
pub fn e17(config: &Config) -> String {
    use cputopo::enumerate;
    let replicas = config.baseline_replicas();
    let topo = &config.lab.topo;
    let n = (topo.num_cpus() / 4).max(2);
    let users = config.lab.users / 2;
    let lab = config.lab.clone().with_users(users);
    let mut out = format!(
        "E17: enumeration order of a {n}-CPU mask (tuned baseline, {users} users)\norder                req/s     mean     util%   distinct cores\n"
    );
    let orders: Vec<(&str, Vec<cputopo::CpuId>)> = vec![
        ("linear", enumerate::linear(topo)),
        ("cores-first", enumerate::cores_first(topo)),
        ("smt-packed", enumerate::smt_packed(topo)),
        ("ccx-round-robin", enumerate::ccx_round_robin(topo)),
        ("socket-round-robin", enumerate::socket_round_robin(topo)),
    ];
    let rows = scaleup::par::map(orders, |(name, order)| {
        let mask = enumerate::take_mask(&order, n);
        let mut cores: Vec<_> = mask.iter().map(|c| topo.core_of(c)).collect();
        cores.sort_unstable();
        cores.dedup();
        let points = scaling::throughput_vs_cpus(&lab, config.store.app(), &order, &[n], &replicas);
        (name, cores.len(), points)
    });
    for (name, distinct_cores, points) in rows {
        let p = &points[0];
        let _ = writeln!(
            out,
            "{:<18} {:>8.0} {:>8.0}µs {:>7.1} {:>14}",
            name,
            p.throughput_rps,
            p.mean_latency_us,
            p.cpu_utilization * 100.0,
            distinct_cores,
        );
    }
    out.push_str(
        "(one thread per core beats sibling-packed masks: SMT pairs deliver ~1.24x, two cores 2x)\n",
    );
    out
}

// --------------------------------------------------------------- E18 / E19

/// The first instance index of the most-replicated service under the tuned
/// baseline — the natural victim for single-replica fault injection: the
/// tier has spare replicas, so resilience has somewhere to route around.
fn fault_victim(replicas: &[usize]) -> (usize, InstanceId) {
    let service = replicas
        .iter()
        .enumerate()
        .max_by_key(|(_, &r)| r)
        .map(|(s, _)| s)
        .expect("baseline has services");
    let first_instance: usize = replicas[..service].iter().sum();
    (service, InstanceId(first_instance as u32))
}

/// A resilience configuration derived from the fault-free baseline: calls
/// time out at 4× the baseline's end-to-end p99 — a budget generous enough
/// that healthy calls (even whole healthy requests) never exhaust it, so
/// only pathologically slow or lost calls trip it. Deriving it from the
/// measured baseline keeps the experiment meaningful under both `--quick`
/// and paper configurations without hand-tuned constants.
fn derived_resilience(baseline: &RunReport, with_breaker: bool) -> ResilienceParams {
    let timeout = baseline.latency_p99.mul_f64(4.0);
    // The breaker stays open for several timeout budgets: long enough that
    // half-open probes against a persistently sick replica stay below the
    // p99 population share, short enough that recovery after a restart is
    // detected within a fraction of a second.
    let breaker = with_breaker.then(|| BreakerPolicy {
        open_for: timeout.mul_f64(8.0),
        ..BreakerPolicy::default()
    });
    ResilienceParams::default()
        .with_timeout(timeout)
        .with_breaker(breaker)
}

/// The lab for the fault studies (plus its fault-free baseline report). The
/// scale-up experiments drive the machine to saturation; there a lost replica
/// barely moves window throughput, because the surviving capacity is still
/// the bottleneck and the remaining users still fill it. The fault studies
/// need a *user-bound* regime, where stranded users and ejected replicas show
/// up directly in throughput and tail latency: probe at half the tuned
/// population and, if that still saturates the machine, resize for ~60%
/// utilization using the measured capacity.
fn fault_lab(config: &Config) -> (Lab, RunReport) {
    let replicas = config.baseline_replicas();
    let half = config.lab.clone().with_users(config.lab.users / 2);
    let report = half.run_policy(&config.store, Policy::Unpinned, &replicas);
    if report.cpu_utilization < 0.8 {
        return (half, report);
    }
    let capacity_rps = report.throughput_rps / report.cpu_utilization;
    let users = ((0.6 * capacity_rps * config.lab.think.as_secs_f64()) as u64).max(16);
    let lab = config.lab.clone().with_users(users);
    let report = lab.run_policy(&config.store, Policy::Unpinned, &replicas);
    (lab, report)
}

/// E18/E19 result: one run per fault/resilience configuration.
#[derive(Debug, Clone)]
pub struct FaultStudy {
    /// `(configuration name, report)` in presentation order.
    pub rows: Vec<(String, RunReport)>,
    /// Rendered table.
    pub table: String,
}

fn fault_study_table(title: &str, note: &str, rows: &[(String, RunReport)]) -> String {
    let mut out = format!(
        "{title}\nconfig                         req/s     mean      p99   timeout    shed\n"
    );
    for (name, r) in rows {
        let _ = writeln!(
            out,
            "{:<26} {:>10.0} {:>8} {:>8} {:>9} {:>7}",
            name, r.throughput_rps, r.mean_latency, r.latency_p99, r.requests_timed_out,
            r.requests_shed,
        );
    }
    out.push_str(note);
    out.push('\n');
    out
}

/// E18 — (extension) slow-replica tail amplification.
///
/// A third of the most-replicated tier serves every request 40× slower
/// (a die-off GC loop, a throttled rack). Least-outstanding balancing alone
/// cannot save the tail: the slow replicas still receive traffic. Timeouts
/// and retries bound the damage per request; the circuit breaker ejects
/// the sick replicas entirely and restores the tail to near-baseline.
pub fn e18(config: &Config) -> FaultStudy {
    let replicas = config.baseline_replicas();
    let (victim_service, victim) = fault_victim(&replicas);
    let (fault_lab, baseline) = fault_lab(config);
    let n_slow = (replicas[victim_service] / 3).max(1);
    let mut faults = FaultPlan::none();
    for k in 0..n_slow as u32 {
        faults = faults.slowdown(InstanceId(victim.0 + k), SimTime::ZERO, SimTime::MAX, 40.0);
    }
    let run = |faults: FaultPlan, resilience: Option<ResilienceParams>| {
        let mut lab = fault_lab.clone();
        lab.engine_params.faults = faults;
        lab.engine_params.resilience = resilience;
        lab.run_policy(&config.store, Policy::Unpinned, &replicas)
    };
    let rows = vec![
        ("no faults".to_owned(), baseline.clone()),
        ("slow replica".to_owned(), run(faults.clone(), None)),
        (
            "slow + timeout/retry".to_owned(),
            run(faults.clone(), Some(derived_resilience(&baseline, false))),
        ),
        (
            "slow + retry + breaker".to_owned(),
            run(faults, Some(derived_resilience(&baseline, true))),
        ),
    ];
    let table = fault_study_table(
        &format!(
            "E18: slow-replica tail amplification ({n_slow} of {} {} replicas 40× slower)",
            replicas[victim_service],
            config.store.app().services()[victim_service].name,
        ),
        "(timeout+retry alone is metastable near saturation: abandoned work still burns CPU\n\
         and every retry adds load, so the tier congests until no attempt beats the timeout\n\
         — a retry storm. The breaker ejects the sick replicas and the tail returns toward\n\
         the fault-free p99.)",
        &rows,
    );
    FaultStudy { rows, table }
}

/// E19 — (extension) crash and recovery under load.
///
/// One replica of the most-replicated tier crashes a third into the
/// measurement window and restarts after a sixth of it. Without resilience,
/// its queued and in-flight requests are simply lost — closed-loop users
/// blocked on them never come back, permanently deflating throughput. With
/// timeouts + retries the lost calls are replayed against the survivors and
/// the throughput dip recovers with the replica.
pub fn e19(config: &Config) -> FaultStudy {
    let replicas = config.baseline_replicas();
    let (_, victim) = fault_victim(&replicas);
    let (fault_lab, baseline) = fault_lab(config);
    let crash_at = SimTime::ZERO + fault_lab.warmup + fault_lab.measure.mul_f64(1.0 / 3.0);
    let down_for = fault_lab.measure.mul_f64(1.0 / 6.0);
    let faults = FaultPlan::none().crash(victim, crash_at, down_for);
    let run = |resilience: Option<ResilienceParams>| {
        let mut lab = fault_lab.clone();
        lab.engine_params.faults = faults.clone();
        lab.engine_params.resilience = resilience;
        lab.run_policy(&config.store, Policy::Unpinned, &replicas)
    };
    let rows = vec![
        ("no faults".to_owned(), baseline.clone()),
        ("crash, no resilience".to_owned(), run(None)),
        (
            "crash + resilience".to_owned(),
            run(Some(derived_resilience(&baseline, true))),
        ),
    ];
    let mut table = fault_study_table(
        &format!(
            "E19: crash and recovery ({victim} down at +{} for {})",
            fault_lab.measure.mul_f64(1.0 / 3.0),
            down_for
        ),
        "(lost work: see the dropped replies / rejected arrivals in the fault counters)",
        &rows,
    );
    for (name, r) in &rows {
        let _ = writeln!(
            table,
            "  {:<26} {} dropped replies, {} rejected arrivals, min bucket {:.0} req/s",
            name,
            r.replies_dropped,
            r.rejected_arrivals,
            min_throughput_bucket(r),
        );
    }
    FaultStudy { rows, table }
}

/// The lowest whole-bucket throughput inside the measurement window — the
/// depth of a crash-induced dip. Ignores the last (possibly partial) bucket.
pub fn min_throughput_bucket(report: &RunReport) -> f64 {
    let series = &report.throughput_series;
    if series.len() < 2 {
        return 0.0;
    }
    series[..series.len() - 1]
        .iter()
        .map(|&(_, rps)| rps)
        .fold(f64::INFINITY, f64::min)
}

// --------------------------------------------------------------- E20 … E23
//
// The overload studies run on a dedicated one-service application rather
// than the full TeaStore: queue growth, retry storms and priority shedding
// are properties of a single saturated tier, and a one-service app keeps
// capacity, offered load and shed accounting exactly interpretable. The lab
// is always the desktop machine — the phenomena do not need 256 CPUs, and
// the paper configuration would only multiply event counts.

/// Fixed per-request CPU demand of the overload app (µs).
const OVERLOAD_DEMAND_US: f64 = 5_000.0;
/// Replicas × worker threads of the overload deployment.
const OVERLOAD_REPLICAS: usize = 4;
const OVERLOAD_THREADS: usize = 4;

/// The single-class overload application (E20, E21, E23).
fn overload_app() -> AppSpec {
    let mut app = AppSpec::new();
    let svc = app.add_service(
        ServiceSpec::new("api", uarch::ServiceProfile::light_rpc("api"))
            .with_threads(OVERLOAD_THREADS),
    );
    app.add_class(
        "browse",
        1.0,
        CallNode::leaf(svc, Demand::fixed_us(OVERLOAD_DEMAND_US)),
    );
    app
}

/// The brownout variant (E22): three request classes of the same service
/// with identical demand, so per-class goodput differences are purely the
/// shedding policy's doing.
fn brownout_app() -> AppSpec {
    let mut app = AppSpec::new();
    let svc = app.add_service(
        ServiceSpec::new("api", uarch::ServiceProfile::light_rpc("api"))
            .with_threads(OVERLOAD_THREADS),
    );
    let demand = || CallNode::leaf(svc, Demand::fixed_us(OVERLOAD_DEMAND_US));
    app.add_class("browse", 0.7, demand());
    app.add_class("checkout", 0.1, demand());
    app.add_class("recommend", 0.2, demand());
    app
}

/// The lab the overload studies share: desktop machine, explicit windows.
fn overload_lab(config: &Config, warmup: SimDuration, measure: SimDuration) -> Lab {
    let mut lab = Lab::small(config.lab.seed);
    lab.warmup = warmup;
    lab.measure = measure;
    // Inherit the checkpoint flag so the overload studies participate in
    // the snapshot/resume differential battery (tests/snapshot.rs), and the
    // shard knobs so `--shards` reaches the overload battery (E22 is part
    // of the sharded golden set).
    lab.checkpoint = config.lab.checkpoint;
    lab.shards = config.lab.shards;
    lab.shard_cross_permille = config.lab.shard_cross_permille;
    lab.shard_latency = config.lab.shard_latency;
    lab.shard_workers = config.lab.shard_workers;
    lab
}

fn overload_deployment(app: &AppSpec, topo: &Arc<cputopo::Topology>) -> Deployment {
    Deployment::uniform(app, topo, OVERLOAD_REPLICAS, OVERLOAD_THREADS)
}

/// Measured saturation throughput of the overload deployment: a short
/// closed-loop probe with far more users than worker threads.
fn overload_capacity(lab: &Lab, app: &AppSpec) -> f64 {
    let mut probe = lab.clone();
    probe.users = 256;
    probe.think = SimDuration::from_millis(2);
    probe.warmup = SimDuration::from_millis(300);
    probe.measure = SimDuration::from_millis(700);
    probe
        .run_app(
            app,
            overload_deployment(app, &probe.topo),
            LbPolicy::LeastOutstanding,
        )
        .throughput_rps
}

/// One open-loop overload run with the given policy knobs.
fn run_overload(
    lab: &Lab,
    app: &AppSpec,
    rate_rps: f64,
    overload: Option<OverloadParams>,
    resilience: Option<ResilienceParams>,
    faults: FaultPlan,
) -> RunReport {
    let mut lab = lab.clone();
    lab.engine_params.overload = overload;
    lab.engine_params.resilience = resilience;
    lab.engine_params.faults = faults;
    lab.run_app_open(
        app,
        overload_deployment(app, &lab.topo),
        LbPolicy::LeastOutstanding,
        rate_rps,
    )
}

/// A slowdown of every overload-app replica over an absolute time interval —
/// the "trigger" of the metastability and recovery studies.
fn overload_burst(from: SimTime, until: SimTime, factor: f64) -> FaultPlan {
    let mut faults = FaultPlan::none();
    for i in 0..OVERLOAD_REPLICAS as u32 {
        faults = faults.slowdown(InstanceId(i), from, until, factor);
    }
    faults
}

/// Mean of the series values with `a <= t < b` (seconds from window start).
fn series_mean(series: &[(f64, f64)], a: f64, b: f64) -> f64 {
    let vals: Vec<f64> = series
        .iter()
        .filter(|&&(t, _)| t >= a && t < b)
        .map(|&(_, v)| v)
        .collect();
    if vals.is_empty() {
        return 0.0;
    }
    vals.iter().sum::<f64>() / vals.len() as f64
}

/// Peak of the report's machine-wide pending-queue depth series.
pub fn max_queue_depth(report: &RunReport) -> f64 {
    report
        .queue_depth_series
        .iter()
        .map(|&(_, d)| d)
        .fold(0.0, f64::max)
}

/// Seconds from `t0` until the series first sustains `threshold` for
/// `sustain` consecutive buckets (ignoring the final, possibly partial
/// bucket); `None` if it never does.
fn time_to_reach(series: &[(f64, f64)], t0: f64, threshold: f64, sustain: usize) -> Option<f64> {
    let whole = &series[..series.len().saturating_sub(1)];
    let mut run_start: Option<f64> = None;
    let mut run_len = 0usize;
    for &(t, v) in whole.iter().filter(|&&(t, _)| t >= t0) {
        if v >= threshold {
            if run_start.is_none() {
                run_start = Some(t);
            }
            run_len += 1;
            if run_len >= sustain {
                return Some((run_start.expect("run started") - t0).max(0.0));
            }
        } else {
            run_start = None;
            run_len = 0;
        }
    }
    None
}

/// How long the series stays below `threshold` after `t0`: seconds until
/// the first bucket at or above it, or until `window_end` if none is. The
/// series is sparse — buckets with no completions are simply absent — so a
/// missing bucket counts as zero, not as recovery.
fn pinned_secs(series: &[(f64, f64)], t0: f64, threshold: f64, window_end: f64) -> f64 {
    for &(t, v) in series.iter().filter(|&&(t, _)| t >= t0) {
        if v >= threshold {
            return (t - t0).max(0.0);
        }
    }
    (window_end - t0).max(0.0)
}

/// Seconds from `t0` until the queue-depth series first drops to `limit`
/// jobs or fewer; `None` if it never drains inside the window.
fn time_to_drain(series: &[(f64, f64)], t0: f64, limit: f64) -> Option<f64> {
    series
        .iter()
        .find(|&&(t, d)| t >= t0 && d <= limit)
        .map(|&(t, _)| (t - t0).max(0.0))
}

fn sum_retries(report: &RunReport) -> u64 {
    report.services.iter().map(|s| s.retries).sum()
}

/// E20 result: goodput and tail latency across an offered-load sweep, with
/// and without admission control.
#[derive(Debug, Clone)]
pub struct OverloadSweep {
    /// Measured saturation throughput of the deployment.
    pub capacity_rps: f64,
    /// `(offered multiple of capacity, unbounded report, admission report)`.
    pub rows: Vec<(f64, RunReport, RunReport)>,
    /// Rendered table.
    pub table: String,
}

/// E20 — the overload sweep. Offered load runs from half capacity to 3×;
/// the unbounded arm lets queues grow without limit, the admission arm
/// bounds each instance queue (reject-new at 64) and sheds stale work at
/// dequeue (5 ms queue deadline). Under overload, admission control trades
/// a bounded goodput loss for orders of magnitude of tail latency.
pub fn e20(config: &Config) -> OverloadSweep {
    let app = overload_app();
    let lab = overload_lab(
        config,
        SimDuration::from_millis(500),
        SimDuration::from_secs(4),
    );
    let capacity_rps = overload_capacity(&lab, &app);
    let admission = OverloadParams::default()
        .with_admission(AdmissionPolicy::RejectNew { bound: 64 })
        .with_queue_deadline(SimDuration::from_millis(5));
    let mults = vec![0.5, 1.0, 1.5, 2.0, 3.0];
    let rows: Vec<(f64, RunReport, RunReport)> = scaleup::par::map(mults, |m| {
        let rate = m * capacity_rps;
        let unbounded = run_overload(
            &lab,
            &app,
            rate,
            Some(OverloadParams::default()),
            None,
            FaultPlan::none(),
        );
        let admitted = run_overload(
            &lab,
            &app,
            rate,
            Some(admission.clone()),
            None,
            FaultPlan::none(),
        );
        (m, unbounded, admitted)
    });
    let mut table = format!(
        "E20: overload sweep — unbounded queues vs admission control (capacity ≈ {capacity_rps:.0} req/s)\n load  config          goodput      p99      shed   max queue\n"
    );
    for (m, unbounded, admitted) in &rows {
        for (name, r) in [("unbounded", unbounded), ("admission", admitted)] {
            let _ = writeln!(
                table,
                " {m:>3.1}×  {:<12} {:>8.0} {:>9} {:>8} {:>10.0}",
                name,
                r.throughput_rps,
                r.latency_p99,
                r.overload.total_sheds(),
                max_queue_depth(r),
            );
        }
    }
    let (_, over_unbounded, over_admitted) = rows.last().expect("swept at least one load");
    let _ = writeln!(
        table,
        "at 3× offered load: admission keeps p99 at {} vs {} unbounded ({}× lower)",
        over_admitted.latency_p99,
        over_unbounded.latency_p99,
        (over_unbounded.latency_p99.as_secs_f64() / over_admitted.latency_p99.as_secs_f64())
            .round(),
    );
    OverloadSweep {
        capacity_rps,
        rows,
        table,
    }
}

/// E21 result: the retry-storm metastability study.
#[derive(Debug, Clone)]
pub struct MetastabilityStudy {
    /// Measured saturation throughput of the deployment.
    pub capacity_rps: f64,
    /// Offered open-loop load (0.65 × capacity).
    pub rate_rps: f64,
    /// `(configuration name, report)`: no budget, then retry budget.
    pub rows: Vec<(String, RunReport)>,
    /// Pre-trigger goodput of the no-budget arm (req/s).
    pub pre_goodput_rps: f64,
    /// How long the no-budget arm stays below 10% of pre-trigger goodput
    /// after the burst ends (the metastable failure).
    pub no_budget_pinned_secs: f64,
    /// Goodput of the budget arm over the last 5 s, as % of pre-trigger.
    pub budget_recovered_pct: f64,
    /// Seconds after the burst until the budget arm sustains ≥90% of
    /// pre-trigger goodput for 3 consecutive buckets.
    pub budget_recovery_secs: Option<f64>,
    /// Rendered table.
    pub table: String,
}

/// Burst window of the E21 trigger, in seconds relative to the measurement
/// window start: `[2.5 s, 3.0 s)`.
const E21_BURST_START_REL: f64 = 2.5;
const E21_BURST_END_REL: f64 = 3.0;

/// E21 — retry-storm metastability, and the retry budget that prevents it.
///
/// A moderate open-loop load (65% of capacity) runs with timeouts + 3
/// retries. A half-second slowdown of every replica (×10 — a GC storm, a
/// packet-loss burst) pushes queue waits past the timeout; every queued call
/// is abandoned and retried, quadrupling the offered attempt rate past
/// capacity — and because abandoned work still burns CPU, the queue never
/// gets back under the timeout. The system stays saturated-but-useless long
/// after the trigger is gone: a metastable failure sustained purely by the
/// retries (the slowed work itself drains within ~2 s). A retry budget (10%
/// of successes, small burst allowance) caps the amplification at ~1.1× and
/// the backlog drains at the spare-capacity rate instead.
pub fn e21(config: &Config) -> MetastabilityStudy {
    let app = overload_app();
    let lab = overload_lab(config, SimDuration::from_secs(1), SimDuration::from_secs(40));
    let capacity_rps = overload_capacity(&lab, &app);
    let rate_rps = 0.65 * capacity_rps;

    // Calibrate the call timeout from a short fault-free run at the same
    // load, exactly like the E18/E19 fault studies do.
    let mut probe = lab.clone();
    probe.warmup = SimDuration::from_millis(500);
    probe.measure = SimDuration::from_secs(2);
    let baseline = run_overload(&probe, &app, rate_rps, None, None, FaultPlan::none());
    let resilience = derived_resilience(&baseline, false).with_retry(RetryPolicy {
        max_retries: 3,
        ..RetryPolicy::default()
    });

    let burst = overload_burst(
        SimTime::ZERO + lab.warmup + SimDuration::from_secs_f64(E21_BURST_START_REL),
        SimTime::ZERO + lab.warmup + SimDuration::from_secs_f64(E21_BURST_END_REL),
        10.0,
    );
    let budget = RetryBudgetPolicy {
        refill_per_success: 0.1,
        cap: 50.0,
        initial: 50.0,
    };
    let arms: Vec<(&str, OverloadParams)> = vec![
        ("no retry budget", OverloadParams::default()),
        (
            "retry budget 10%",
            OverloadParams::default().with_retry_budget(budget),
        ),
    ];
    let rows: Vec<(String, RunReport)> = scaleup::par::map(arms, |(name, overload)| {
        let r = run_overload(
            &lab,
            &app,
            rate_rps,
            Some(overload),
            Some(resilience.clone()),
            burst.clone(),
        );
        (name.to_owned(), r)
    });

    // Series timestamps are absolute (seconds since run start, warm-up
    // included); shift the window-relative landmarks accordingly.
    let t0 = lab.warmup.as_secs_f64();
    let window_end = t0 + lab.measure.as_secs_f64();
    let burst_start = t0 + E21_BURST_START_REL;
    let burst_end = t0 + E21_BURST_END_REL;
    let no_budget = &rows[0].1;
    let with_budget = &rows[1].1;
    let pre_goodput_rps = series_mean(&no_budget.throughput_series, t0 + 0.5, burst_start - 0.1);
    let pre_budget = series_mean(&with_budget.throughput_series, t0 + 0.5, burst_start - 0.1);
    let no_budget_pinned_secs = pinned_secs(
        &no_budget.throughput_series,
        burst_end,
        0.10 * pre_goodput_rps,
        window_end,
    );
    let budget_recovery_secs = time_to_reach(
        &with_budget.throughput_series,
        burst_end,
        0.90 * pre_budget,
        3,
    );
    let budget_recovered_pct =
        100.0 * series_mean(&with_budget.throughput_series, window_end - 5.0, window_end)
            / pre_budget;

    let mut table = format!(
        "E21: retry-storm metastability (open loop at {rate_rps:.0} req/s = 65% of capacity,\n     all replicas 10× slower over [{E21_BURST_START_REL}s, {E21_BURST_END_REL}s), timeouts + 3 retries)\nconfig               goodput   timed out    retries   budget-denied   max queue\n"
    );
    for (name, r) in &rows {
        let _ = writeln!(
            table,
            "{:<18} {:>8.0} {:>11} {:>10} {:>15} {:>11.0}",
            name,
            r.throughput_rps,
            r.requests_timed_out,
            sum_retries(r),
            r.overload.budget_denied,
            max_queue_depth(r),
        );
    }
    let _ = writeln!(
        table,
        "no-budget arm: goodput pinned below 10% of pre-trigger for {no_budget_pinned_secs:.1}s after the burst (metastable)",
    );
    let _ = writeln!(
        table,
        "e21 headline: retry budget recovered goodput to {budget_recovered_pct:.1}% of pre-trigger in {} (no-budget arm: pinned)",
        budget_recovery_secs
            .map(|s| format!("{s:.1}s"))
            .unwrap_or_else(|| "∞".to_owned()),
    );
    MetastabilityStudy {
        capacity_rps,
        rate_rps,
        rows,
        pre_goodput_rps,
        no_budget_pinned_secs,
        budget_recovered_pct,
        budget_recovery_secs,
        table,
    }
}

/// One request class's outcome in an E22 arm:
/// `(class name, submitted, failed, goodput fraction)`.
pub type ClassGoodput = (String, u64, u64, f64);

/// E22 result: the brownout / graceful-degradation study.
#[derive(Debug, Clone)]
pub struct BrownoutStudy {
    /// Measured saturation throughput of the deployment.
    pub capacity_rps: f64,
    /// Offered open-loop load (1.6 × capacity).
    pub rate_rps: f64,
    /// `(configuration name, report)`: class-blind, then priority shedding.
    pub rows: Vec<(String, RunReport)>,
    /// Per arm: `(arm name, per-class outcomes)`.
    pub class_goodput: Vec<(String, Vec<ClassGoodput>)>,
    /// Checkout goodput fraction under priority shedding (the headline).
    pub checkout_goodput: f64,
    /// Browse goodput fraction under priority shedding (the sacrifice).
    pub browse_goodput: f64,
    /// Rendered table.
    pub table: String,
}

/// E22 — brownout: graceful degradation under sustained 1.6× overload.
///
/// Three request classes share one saturated tier. A class-blind bounded
/// queue sheds every class equally — checkout loses the same ~40% as
/// browse. Priority shedding (checkout > recommend > browse, WRED-style
/// per-priority depth thresholds on the shared queue) starves the
/// best-effort classes first and keeps checkout goodput near 100%.
pub fn e22(config: &Config) -> BrownoutStudy {
    let app = brownout_app();
    let lab = overload_lab(
        config,
        SimDuration::from_millis(500),
        SimDuration::from_secs(4),
    );
    let capacity_rps = overload_capacity(&lab, &app);
    let rate_rps = 1.6 * capacity_rps;
    // Class priorities follow class order (browse, checkout, recommend):
    // checkout is priority 0 (protected), recommend 1, browse 2. Depth
    // thresholds per priority: checkout queues up to 4096 (effectively
    // never shed), recommend up to 64, browse up to 32.
    let arms: Vec<(&str, OverloadParams)> = vec![
        (
            "class-blind bound 64",
            OverloadParams::default().with_admission(AdmissionPolicy::RejectNew { bound: 64 }),
        ),
        (
            "priority shedding",
            OverloadParams::default()
                .with_priority(PriorityPolicy::new(vec![2, 0, 1], vec![4096, 64, 32])),
        ),
    ];
    let rows: Vec<(String, RunReport)> = scaleup::par::map(arms, |(name, overload)| {
        let r = run_overload(
            &lab,
            &app,
            rate_rps,
            Some(overload),
            None,
            FaultPlan::none(),
        );
        (name.to_owned(), r)
    });
    let class_names: Vec<String> = app.classes().iter().map(|c| c.name.clone()).collect();
    let class_goodput: Vec<(String, Vec<ClassGoodput>)> = rows
        .iter()
        .map(|(arm, r)| {
            let per_class = class_names
                .iter()
                .enumerate()
                .map(|(c, name)| {
                    let submitted = r.per_class_submitted[c];
                    let failed = r.per_class_failed[c];
                    let goodput = if submitted == 0 {
                        0.0
                    } else {
                        1.0 - failed as f64 / submitted as f64
                    };
                    (name.clone(), submitted, failed, goodput)
                })
                .collect();
            (arm.clone(), per_class)
        })
        .collect();
    let priority_arm = &class_goodput[1].1;
    let checkout_goodput = priority_arm[1].3;
    let browse_goodput = priority_arm[0].3;
    let mut table = format!(
        "E22: brownout — graceful degradation at {rate_rps:.0} req/s (1.6× capacity)\nconfig                 class        submitted     shed   goodput\n"
    );
    for (arm, classes) in &class_goodput {
        for (class, submitted, failed, goodput) in classes {
            let _ = writeln!(
                table,
                "{:<22} {:<12} {:>9} {:>8} {:>8.1}%",
                arm,
                class,
                submitted,
                failed,
                goodput * 100.0,
            );
        }
    }
    let _ = writeln!(
        table,
        "e22 headline: priority shedding keeps checkout goodput at {:.1}% while browse sheds to {:.1}%",
        checkout_goodput * 100.0,
        browse_goodput * 100.0,
    );
    BrownoutStudy {
        capacity_rps,
        rate_rps,
        rows,
        class_goodput,
        checkout_goodput,
        browse_goodput,
        table,
    }
}

/// E23 result: the recovery-hysteresis study.
#[derive(Debug, Clone)]
pub struct RecoveryStudy {
    /// Measured saturation throughput of the deployment.
    pub capacity_rps: f64,
    /// Offered open-loop load (0.75 × capacity).
    pub rate_rps: f64,
    /// `(configuration name, report, seconds after the burst until the
    /// backlog drains to ≤8 queued jobs — `None` if it never does)`.
    pub rows: Vec<(String, RunReport, Option<f64>)>,
    /// Rendered table.
    pub table: String,
}

/// Absolute burst window of the E23 trigger, relative to the measurement
/// window start: `[1.0 s, 2.0 s)`.
const E23_BURST_START_REL: f64 = 1.0;
const E23_BURST_END_REL: f64 = 2.0;

/// E23 — recovery hysteresis: how long the backlog outlives its trigger.
///
/// A 1 s slowdown at 75% load leaves a queue of stale work behind. With
/// unbounded queues the backlog drains only at the spare-capacity rate and
/// latency stays elevated long after the trigger (hysteresis); a bounded
/// queue never builds the backlog; drop-oldest keeps the freshest work;
/// a queue deadline (CoDel-style) discards exactly the work that is already
/// too old to matter and recovers fastest.
pub fn e23(config: &Config) -> RecoveryStudy {
    let app = overload_app();
    let lab = overload_lab(
        config,
        SimDuration::from_millis(500),
        SimDuration::from_secs(30),
    );
    let capacity_rps = overload_capacity(&lab, &app);
    let rate_rps = 0.75 * capacity_rps;
    let burst = overload_burst(
        SimTime::ZERO + lab.warmup + SimDuration::from_secs_f64(E23_BURST_START_REL),
        SimTime::ZERO + lab.warmup + SimDuration::from_secs_f64(E23_BURST_END_REL),
        10.0,
    );
    let arms: Vec<(&str, OverloadParams)> = vec![
        ("unbounded", OverloadParams::default()),
        (
            "reject-new 128",
            OverloadParams::default().with_admission(AdmissionPolicy::RejectNew { bound: 128 }),
        ),
        (
            "drop-oldest 128",
            OverloadParams::default().with_admission(AdmissionPolicy::DropOldest { bound: 128 }),
        ),
        (
            "deadline 5ms",
            OverloadParams::default().with_queue_deadline(SimDuration::from_millis(5)),
        ),
    ];
    // Queue-depth timestamps are absolute (seconds since run start).
    let burst_end = lab.warmup.as_secs_f64() + E23_BURST_END_REL;
    let rows: Vec<(String, RunReport, Option<f64>)> = scaleup::par::map(arms, |(name, overload)| {
        let r = run_overload(
            &lab,
            &app,
            rate_rps,
            Some(overload),
            None,
            burst.clone(),
        );
        let drain = time_to_drain(&r.queue_depth_series, burst_end, 8.0);
        (name.to_owned(), r, drain)
    });
    let mut table = format!(
        "E23: recovery hysteresis (open loop at {rate_rps:.0} req/s = 75% of capacity,\n     all replicas 10× slower over [{E23_BURST_START_REL}s, {E23_BURST_END_REL}s))\nconfig              goodput      p99      shed   max queue   drain after burst\n"
    );
    for (name, r, drain) in &rows {
        let _ = writeln!(
            table,
            "{:<18} {:>8.0} {:>9} {:>8} {:>10.0} {:>14}",
            name,
            r.throughput_rps,
            r.latency_p99,
            r.overload.total_sheds(),
            max_queue_depth(r),
            drain
                .map(|s| format!("{s:.1}s"))
                .unwrap_or_else(|| "never".to_owned()),
        );
    }
    table.push_str(
        "(the backlog, not the trigger, sets the recovery time: bounded and deadline\n queues shed the stale work and the tail returns as soon as the trigger ends)\n",
    );
    RecoveryStudy {
        capacity_rps,
        rate_rps,
        rows,
        table,
    }
}

// ------------------------------------------------- E24–E26 (mega scale)

/// Wake-coalescing grain for the mega-scale runs: an eighth of the think
/// time, clamped to [1 ms, 10 ms]. Small enough to leave think-time jitter
/// intact, large enough that a million parked users share O(window/grain)
/// calendar events instead of one timer each.
fn mega_grain(think: SimDuration) -> SimDuration {
    SimDuration::from_nanos((think.as_nanos() / 8).clamp(1_000_000, 10_000_000))
}

/// Think time that holds the lab's nominal offered rate (`users / think`)
/// constant while the population scales — 10× the users, 10× the think.
fn mega_think(config: &Config, users: u64) -> SimDuration {
    SimDuration::from_nanos(
        config.lab.think.as_nanos().saturating_mul(users) / config.lab.users.max(1),
    )
}

/// One coalesced closed-loop run of the tuned TeaStore baseline plus the
/// measurements E24/E25 report on top of the [`RunReport`].
struct MegaRun {
    report: RunReport,
    /// Engine + load-generator heap bytes (capacities, not lengths).
    footprint_bytes: u64,
    /// Host wall-clock seconds of the simulation loop (display only —
    /// never feed this into anything that must be deterministic).
    wall_secs: f64,
    /// p99 latency estimated from the retained traces, if any completed.
    trace_p99: Option<SimDuration>,
}

/// Like [`Lab::run_app`] for the tuned unpinned baseline, but with wake
/// coalescing enabled (which `Lab` deliberately does not model: the exact
/// timer path is what the E1–E23 golden hashes pin down) and with wall
/// clock, footprint, and trace quantiles captured.
fn mega_run(
    config: &Config,
    users: u64,
    think: SimDuration,
    patch: impl FnOnce(&mut EngineParams),
) -> MegaRun {
    let lab = &config.lab;
    let replicas = config.baseline_replicas();
    let placed = Policy::Unpinned.deploy(config.store.app(), &lab.topo, &replicas);
    let app = config.store.app().clone();
    let mix: Vec<f64> = app.classes().iter().map(|c| c.weight).collect();
    let mut params = lab.engine_params.clone();
    params.lb = placed.lb;
    patch(&mut params);
    let mut engine = Engine::new(lab.topo.clone(), params, app, placed.deployment, lab.seed);
    let mut load = ClosedLoop::new(users)
        .think_time(think)
        .coalesce(mega_grain(think))
        .mix(&mix)
        .warmup(lab.warmup)
        .measure(lab.measure);
    let horizon = SimTime::ZERO + (lab.warmup + lab.measure) * 4;
    let start = std::time::Instant::now();
    engine.run(&mut load, horizon);
    let wall_secs = start.elapsed().as_secs_f64();
    let mut latencies: Vec<u64> = engine
        .traces()
        .iter()
        .filter_map(|t| t.latency())
        .map(|d| d.as_nanos())
        .collect();
    latencies.sort_unstable();
    let trace_p99 = (!latencies.is_empty()).then(|| {
        SimDuration::from_nanos(latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)])
    });
    let report = engine.report();
    let footprint_bytes = report.engine_footprint_bytes + load.footprint_bytes() as u64;
    MegaRun {
        report,
        footprint_bytes,
        wall_secs,
        trace_p99,
    }
}

/// One row of the E24 population sweep.
#[derive(Debug, Clone)]
pub struct PopulationPoint {
    /// Closed-loop population.
    pub users: u64,
    /// Think time used (scaled with the population).
    pub think: SimDuration,
    /// The run.
    pub report: RunReport,
    /// Engine + generator heap bytes divided by the population.
    pub bytes_per_user: f64,
    /// Simulation events per host wall-clock second. Host-dependent —
    /// display only, excluded from determinism checks.
    pub events_per_sec: f64,
}

/// E24 result: the population scale-up curve.
#[derive(Debug, Clone)]
pub struct PopulationScale {
    /// One row per population, in sweep order.
    pub rows: Vec<PopulationPoint>,
    /// Rendered table.
    pub table: String,
}

/// E24 — user-population scale-up: 1k → 1M closed-loop users against the
/// tuned baseline, think time scaled with the population so the nominal
/// offered rate stays fixed. With think ≫ window the measured arrivals are
/// the stagger wave (spread over think/2), so offered load stays bounded
/// at roughly 2× nominal while the population — and therefore generator
/// state — grows by three orders of magnitude. The deliverables are the
/// memory and event-throughput columns: bytes/user must stay flat and
/// events/s must not collapse as users scale.
pub fn e24(config: &Config) -> PopulationScale {
    let rate_rps = config.lab.users as f64 / config.lab.think.as_secs_f64();
    let rows: Vec<PopulationPoint> = scaleup::par::map(config.mega_users.clone(), |users| {
        let think = mega_think(config, users);
        let run = mega_run(config, users, think, |_| {});
        PopulationPoint {
            users,
            think,
            bytes_per_user: run.footprint_bytes as f64 / users as f64,
            events_per_sec: run.report.events_processed as f64 / run.wall_secs.max(1e-9),
            report: run.report,
        }
    });
    let mut table = format!(
        "E24: population scale-up (nominal offered load {rate_rps:.0} req/s, coalesced wakeups)\n   users    think      req/s      p99     events   Mevents/s   B/user\n"
    );
    for p in &rows {
        let _ = writeln!(
            table,
            "{:>8} {:>8} {:>10.0} {:>8} {:>10} {:>11.2} {:>8.1}",
            p.users,
            p.think,
            p.report.throughput_rps,
            p.report.latency_p99,
            p.report.events_processed,
            p.events_per_sec / 1e6,
            p.bytes_per_user,
        );
    }
    let (first, last) = (rows.first().expect("rows"), rows.last().expect("rows"));
    let _ = writeln!(
        table,
        "{}× the users costs {:.1}× the per-user bytes ({:.1} → {:.1} B/user)",
        last.users / first.users.max(1),
        last.bytes_per_user / first.bytes_per_user.max(1e-9),
        first.bytes_per_user,
        last.bytes_per_user,
    );
    PopulationScale { rows, table }
}

/// One arm of the E25 tracing comparison.
#[derive(Debug, Clone)]
pub struct TraceArm {
    /// Arm name: `off`, `head` (every request, head-capped), `reservoir`.
    pub mode: &'static str,
    /// The run (identical simulation results across arms by construction).
    pub report: RunReport,
    /// p99 latency estimated from the retained traces.
    pub trace_p99: Option<SimDuration>,
}

/// E25 result: memory vs fidelity of the tracing modes.
#[derive(Debug, Clone)]
pub struct TraceFidelity {
    /// Population used for all three arms.
    pub users: u64,
    /// `off`, `head`, `reservoir` in that order.
    pub rows: Vec<TraceArm>,
    /// Rendered table.
    pub table: String,
}

/// E25 — memory vs fidelity of request tracing at a fixed 10k-user
/// population. Three arms: tracing off, every-request tracing (which caps
/// at [`Tracer::MAX_TRACES`] and therefore keeps only the *head* of the
/// run), and a same-capacity uniform reservoir (Algorithm R). Both modes
/// pay O(capacity) memory; only the reservoir's p99 estimate tracks the
/// true p99, because the head sample is biased toward the cold start. The
/// simulation itself is byte-identical across arms — tracing draws from a
/// dedicated RNG stream.
pub fn e25(config: &Config) -> TraceFidelity {
    let users = 10_000;
    let think = mega_think(config, users);
    type Patch = fn(&mut EngineParams);
    let arms: Vec<(&'static str, Patch)> = vec![
        ("off", |_| {}),
        ("head", |p| p.trace_sample_every = Some(1)),
        ("reservoir", |p| p.trace_reservoir = Some(Tracer::MAX_TRACES)),
    ];
    let rows: Vec<TraceArm> = scaleup::par::map(arms, |(mode, patch)| {
        let run = mega_run(config, users, think, patch);
        TraceArm {
            mode,
            report: run.report,
            trace_p99: run.trace_p99,
        }
    });
    let off = &rows[0];
    let true_p99 = off.report.latency_p99;
    let mut table = format!(
        "E25: trace memory vs fidelity at {users} users (capacity {} traces)\n mode        retained   trace KiB   est p99   true p99   err%\n",
        Tracer::MAX_TRACES
    );
    for arm in &rows {
        let trace_bytes = arm
            .report
            .engine_footprint_bytes
            .saturating_sub(off.report.engine_footprint_bytes);
        let (est, err) = match arm.trace_p99 {
            Some(p) => (
                p.to_string(),
                format!(
                    "{:+.1}",
                    ratio_pct(p.as_secs_f64(), true_p99.as_secs_f64())
                ),
            ),
            None => ("-".to_owned(), "-".to_owned()),
        };
        let _ = writeln!(
            table,
            " {:<10} {:>9} {:>11.1} {:>9} {:>10} {:>6}",
            arm.mode,
            arm.report.traces_retained,
            trace_bytes as f64 / 1024.0,
            est,
            true_p99,
            err,
        );
    }
    let identical = rows
        .iter()
        .all(|a| a.report.completed == off.report.completed && a.report.latency_p99 == true_p99);
    let _ = writeln!(
        table,
        "simulation results {} across arms (tracing uses its own RNG stream)",
        if identical { "identical" } else { "DIVERGED" },
    );
    TraceFidelity { users, rows, table }
}

/// E26 result: the admission-control sweep at a 100k-user population.
#[derive(Debug, Clone)]
pub struct MegaOverload {
    /// Closed-loop population of every run.
    pub users: u64,
    /// Measured saturation throughput of the overload deployment.
    pub capacity_rps: f64,
    /// `(offered multiple of capacity, unbounded report, admission report)`.
    pub rows: Vec<(f64, RunReport, RunReport)>,
    /// Rendered table.
    pub table: String,
}

/// One closed-loop coalesced run against the overload deployment.
fn run_overload_closed(
    lab: &Lab,
    app: &AppSpec,
    users: u64,
    think: SimDuration,
    overload: Option<OverloadParams>,
) -> RunReport {
    let mix: Vec<f64> = app.classes().iter().map(|c| c.weight).collect();
    let mut params = lab.engine_params.clone();
    params.lb = LbPolicy::LeastOutstanding;
    params.overload = overload;
    let mut engine = Engine::new(
        lab.topo.clone(),
        params,
        app.clone(),
        overload_deployment(app, &lab.topo),
        lab.seed,
    );
    let mut load = ClosedLoop::new(users)
        .think_time(think)
        .coalesce(mega_grain(think))
        .mix(&mix)
        .warmup(lab.warmup)
        .measure(lab.measure);
    engine.run(&mut load, SimTime::ZERO + (lab.warmup + lab.measure) * 4);
    engine.report()
}

/// E26 — E20's admission-control comparison rerun at mega scale: a 100k
/// closed-loop population instead of an open-loop Poisson source. Think
/// times are chosen so the stagger wave offers `m × capacity`; with think
/// far beyond the window, the population behaves like an open-loop source
/// of that rate while the engine carries 100k live users. Admission
/// control must deliver the same verdict as E20 — bounded goodput loss for
/// orders of magnitude of tail latency — at three orders of magnitude more
/// generator state.
pub fn e26(config: &Config) -> MegaOverload {
    let users: u64 = 100_000;
    let app = overload_app();
    let lab = overload_lab(
        config,
        SimDuration::from_millis(500),
        SimDuration::from_millis(2500),
    );
    let capacity_rps = overload_capacity(&lab, &app);
    let admission = OverloadParams::default()
        .with_admission(AdmissionPolicy::RejectNew { bound: 64 })
        .with_queue_deadline(SimDuration::from_millis(5));
    let mults = vec![0.5, 1.5, 3.0];
    let rows: Vec<(f64, RunReport, RunReport)> = scaleup::par::map(mults, |m| {
        // Stagger spreads arrivals over think/2, so think = 2·users/rate
        // makes the wave offer exactly `m × capacity`.
        let think =
            SimDuration::from_nanos((2.0 * users as f64 / (m * capacity_rps) * 1e9) as u64);
        let unbounded = run_overload_closed(
            &lab,
            &app,
            users,
            think,
            Some(OverloadParams::default()),
        );
        let admitted = run_overload_closed(&lab, &app, users, think, Some(admission.clone()));
        (m, unbounded, admitted)
    });
    let mut table = format!(
        "E26: overload at mega scale — {users} closed-loop users (capacity ≈ {capacity_rps:.0} req/s)\n load  config          goodput      p99      shed   max queue\n"
    );
    for (m, unbounded, admitted) in &rows {
        for (name, r) in [("unbounded", unbounded), ("admission", admitted)] {
            let _ = writeln!(
                table,
                " {m:>3.1}×  {:<12} {:>8.0} {:>9} {:>8} {:>10.0}",
                name,
                r.throughput_rps,
                r.latency_p99,
                r.overload.total_sheds(),
                max_queue_depth(r),
            );
        }
    }
    let (_, over_unbounded, over_admitted) = rows.last().expect("swept at least one load");
    let _ = writeln!(
        table,
        "at 3× offered load: admission keeps p99 at {} vs {} unbounded — same verdict as E20\n with 100k live users instead of an open-loop source",
        over_admitted.latency_p99,
        over_unbounded.latency_p99,
    );
    MegaOverload {
        users,
        capacity_rps,
        rows,
        table,
    }
}

// ---------------------------------------------------------------------- E27

/// E27 result: the same measurement grid run cold and warm-started.
#[derive(Debug, Clone)]
pub struct WarmStartStudy {
    /// `(users, horizon extent past warm-up, report)` cells, cold arm.
    pub cold: Vec<(u64, SimDuration, RunReport)>,
    /// The same cells warm-started from one checkpoint per population.
    pub warm: Vec<(u64, SimDuration, RunReport)>,
    /// Wall-clock seconds of the cold arm (every cell replays warm-up).
    pub cold_secs: f64,
    /// Wall-clock seconds of the warm arm (one warm-up per population).
    pub warm_secs: f64,
    /// `true` when both arms agree bit-for-bit on every reported figure.
    pub identical: bool,
    /// Rendered table.
    pub table: String,
}

/// Builds one E27 grid cell: the tuned unpinned deployment under a
/// closed-loop population. No `.measure(..)` — the run horizon bounds each
/// cell instead of a STOP timer, so every extent of the grid can resume
/// from the same warm-up checkpoint.
fn warm_grid_build(config: &Config, users: u64) -> (Engine, ClosedLoop) {
    let lab = &config.lab;
    let app = config.store.app();
    let replicas = config.baseline_replicas();
    let placed = Policy::Unpinned.deploy(app, &lab.topo, &replicas);
    let mix: Vec<f64> = app.classes().iter().map(|c| c.weight).collect();
    let mut params = lab.engine_params.clone();
    params.lb = placed.lb;
    let engine = Engine::new(
        lab.topo.clone(),
        params,
        app.clone(),
        placed.deployment,
        lab.seed,
    );
    let load = ClosedLoop::new(users)
        .think_time(lab.think)
        .mix(&mix)
        .warmup(lab.warmup);
    (engine, load)
}

/// The deterministic fields of one grid cell, for the cold-vs-warm check.
fn warm_grid_fingerprint(
    rows: &[(u64, SimDuration, RunReport)],
) -> Vec<(u64, u64, u64, u64, u64)> {
    rows.iter()
        .map(|(users, extent, r)| {
            (
                *users,
                extent.as_nanos(),
                r.completed,
                r.events_processed,
                r.throughput_rps.to_bits(),
            )
        })
        .collect()
}

/// E27 — warm-started sweeps: one shared checkpoint per closed-loop
/// population serves every measurement extent of the grid. The cold arm
/// replays the warm-up prefix for each cell; the warm arm pays it once,
/// snapshots the full simulation state, and resumes per cell. The two arms
/// must agree bit-for-bit — the snapshot layer's end-to-end guarantee —
/// while the warm arm skips the shared prefix.
pub fn e27(config: &Config) -> WarmStartStudy {
    // Two populations keep the grid honest (a checkpoint is per-population:
    // the user table it captures cannot be reshaped) without dominating the
    // suite's runtime; the extents share one warm-up each.
    let populations: Vec<u64> = config.user_sweep.iter().copied().take(2).collect();
    let extents: Vec<SimDuration> = [1u32, 2, 4]
        .iter()
        .map(|&k| config.lab.measure.mul_f64(0.25 * k as f64))
        .collect();
    let t_warm = SimTime::ZERO + config.lab.warmup;

    let cold_t0 = Instant::now();
    let mut cold = Vec::new();
    for &users in &populations {
        for &extent in &extents {
            let (mut engine, mut load) = warm_grid_build(config, users);
            engine.run(&mut load, t_warm + extent);
            cold.push((users, extent, engine.report()));
        }
    }
    let cold_secs = cold_t0.elapsed().as_secs_f64();

    let warm_t0 = Instant::now();
    let mut warm = Vec::new();
    let mut checkpoint_bytes = 0usize;
    for &users in &populations {
        let (mut engine, mut load) = warm_grid_build(config, users);
        engine.run(&mut load, t_warm);
        let mut w = SnapWriter::new();
        engine.snap_save(&mut w);
        load.snap_save(&mut w);
        let checkpoint = w.finish();
        checkpoint_bytes = checkpoint.len();
        for &extent in &extents {
            let (mut engine, mut load) = warm_grid_build(config, users);
            let mut r = SnapReader::new(&checkpoint)
                .expect("the checkpoint written above is well-formed");
            engine
                .snap_restore(&mut r)
                .expect("the checkpoint restores into the engine that wrote it");
            load.snap_restore(&mut r)
                .expect("the checkpoint restores into the driver that wrote it");
            engine.run_resumed(&mut load, t_warm + extent);
            warm.push((users, extent, engine.report()));
        }
    }
    let warm_secs = warm_t0.elapsed().as_secs_f64();

    let identical = warm_grid_fingerprint(&cold) == warm_grid_fingerprint(&warm);

    let mut table = String::from(
        "E27: warm-started sweep from one shared checkpoint per population\n users  extent      req/s  completed      p99\n",
    );
    for (users, extent, r) in &warm {
        let _ = writeln!(
            table,
            "{:>6} {:>7} {:>10.0} {:>10} {:>8}",
            users,
            extent.to_string(),
            r.throughput_rps,
            r.completed,
            r.latency_p99,
        );
    }
    let _ = writeln!(
        table,
        "cold arm: {cold_secs:.2}s wall ({} cells, each replaying the {} warm-up)",
        cold.len(),
        config.lab.warmup,
    );
    let _ = writeln!(
        table,
        "warm arm: {warm_secs:.2}s wall (one warm-up + {checkpoint_bytes}-byte checkpoint per population, resumed per cell)",
    );
    let _ = writeln!(
        table,
        "warm start saved {:.0}% wall time; cold vs warm reports: {}",
        100.0 * (1.0 - warm_secs / cold_secs.max(1e-9)),
        if identical { "identical" } else { "DIVERGED" },
    );
    WarmStartStudy {
        cold,
        warm,
        cold_secs,
        warm_secs,
        identical,
        table,
    }
}

// ---------------------------------------------------------------------- E28

/// One row of the E28 shard-count scaling sweep.
#[derive(Debug, Clone)]
pub struct ShardScalePoint {
    /// Closed-loop population, summed over all cells.
    pub users: u64,
    /// Shard (cell) count of this run.
    pub shards: u32,
    /// The run (merged across cells for `shards > 1`).
    pub report: RunReport,
    /// Host wall-clock seconds of the simulation loop. Host-dependent —
    /// display only, excluded from determinism checks.
    pub wall_secs: f64,
    /// Simulation events per host wall-clock second (host-dependent).
    pub events_per_sec: f64,
    /// Event rate relative to the 1-shard arm of the same population
    /// (host-dependent; 1.0 for the 1-shard arm by construction).
    pub speedup: f64,
}

/// E28 result: the shard-count scaling curve.
#[derive(Debug, Clone)]
pub struct ShardScaling {
    /// One row per (population, shard count), populations outermost.
    pub rows: Vec<ShardScalePoint>,
    /// Rendered table.
    pub table: String,
}

/// One coalesced closed-loop run of the tuned baseline, sharded into
/// `shards` conservative-lookahead cells (the sharded twin of
/// [`mega_run`]). Returns the merged report and the wall-clock seconds of
/// the simulation loop.
fn mega_run_sharded(
    config: &Config,
    users: u64,
    think: SimDuration,
    shards: u32,
) -> (RunReport, f64) {
    let (report, _, wall) =
        mega_run_sharded_with(config, users, think, shards, 50, WindowPolicy::Conservative);
    (report, wall)
}

/// [`mega_run_sharded`] with the cross-cell traffic rate and the window
/// policy as sweep axes (E30). Also returns the run's synchronization
/// counters.
fn mega_run_sharded_with(
    config: &Config,
    users: u64,
    think: SimDuration,
    shards: u32,
    cross_permille: u32,
    policy: WindowPolicy,
) -> (RunReport, SyncStats, f64) {
    let lab = &config.lab;
    let replicas = config.baseline_replicas();
    let placed = Policy::Unpinned.deploy(config.store.app(), &lab.topo, &replicas);
    let app = config.store.app().clone();
    let mix: Vec<f64> = app.classes().iter().map(|c| c.weight).collect();
    let spec = ShardSpec {
        cells: shards,
        cross_permille,
        latency: SimDuration::from_millis(1),
    };
    let cells: Vec<(Engine, ClosedLoop)> = (0..shards)
        .map(|c| {
            let mut params = lab.engine_params.clone();
            params.lb = placed.lb;
            let engine = Engine::new(
                lab.topo.clone(),
                params,
                app.clone(),
                placed.deployment.clone(),
                mix_seed(lab.seed, c),
            );
            let share = users / u64::from(shards)
                + u64::from(u64::from(c) < users % u64::from(shards));
            let load = ClosedLoop::new(share)
                .think_time(think)
                .coalesce(mega_grain(think))
                .mix(&mix)
                .warmup(lab.warmup)
                .measure(lab.measure);
            (engine, load)
        })
        .collect();
    let mut run = ShardedRun::new(cells, spec).with_policy(policy);
    let horizon = SimTime::ZERO + (lab.warmup + lab.measure) * 4;
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let start = Instant::now();
    run.run(horizon, workers);
    (
        run.report(),
        run.sync_stats(),
        start.elapsed().as_secs_f64(),
    )
}

/// E28 — shard-count scaling: event rate and speedup vs shard count for the
/// coalesced mega-scale baseline, at each population in
/// [`Config::shard_users`]. The arms run *sequentially* — each sharded run
/// already owns every host core, so nesting them in the sweep pool would
/// double-subscribe the machine and corrupt the wall-clock columns. The
/// simulated figures (req/s, events) are deterministic per shard count; the
/// events/s and speedup columns are host measurements, display only.
pub fn e28(config: &Config) -> ShardScaling {
    let shard_counts = [1u32, 2, 4, 8];
    let mut rows = Vec::new();
    let mut table = format!(
        "E28: shard-count scaling (coalesced closed loop, {:.1}% cross-cell traffic, 1ms lookahead)\n    users  shards      req/s       events   Mevents/s   speedup\n",
        0.1 * 50.0
    );
    for &users in &config.shard_users {
        let think = mega_think(config, users);
        let mut serial_eps = 0.0;
        for &shards in &shard_counts {
            let (report, wall_secs) = mega_run_sharded(config, users, think, shards);
            let events_per_sec = report.events_processed as f64 / wall_secs.max(1e-9);
            if shards == 1 {
                serial_eps = events_per_sec;
            }
            let speedup = events_per_sec / serial_eps.max(1e-9);
            let _ = writeln!(
                table,
                "{:>9} {:>7} {:>10.0} {:>12} {:>11.2} {:>8.2}×",
                users,
                shards,
                report.throughput_rps,
                report.events_processed,
                events_per_sec / 1e6,
                speedup,
            );
            rows.push(ShardScalePoint {
                users,
                shards,
                report,
                wall_secs,
                events_per_sec,
                speedup,
            });
        }
    }
    let best = rows
        .iter()
        .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
        .expect("at least one row");
    let _ = writeln!(
        table,
        "best speedup: {:.2}× at {} shards / {} users on {} host cores\n(speedup is wall-clock and host-dependent; the simulated columns are deterministic per shard count)",
        best.speedup,
        best.shards,
        best.users,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    ShardScaling { rows, table }
}

// ---------------------------------------------------------------------- E30

/// One arm of the E30 window-policy sweep.
#[derive(Debug, Clone)]
pub struct PolicyPoint {
    /// Cross-cell traffic rate of this arm (per-mille of submissions).
    pub cross_permille: u32,
    /// Window policy name (`conservative` / `adaptive` / `speculative`).
    pub policy: &'static str,
    /// The merged run report (must be identical across policies for a
    /// given cross rate — that's the determinism contract under test).
    pub report: RunReport,
    /// Synchronization counters of the run.
    pub stats: SyncStats,
    /// Barrier crossings per simulated second. Deterministic per
    /// (workload, cross rate, policy) — the figure the policies compete on.
    pub barriers_per_sim_sec: f64,
    /// Rollbacks per round (0 for conservative and adaptive by
    /// construction — they never run past a barrier speculatively without
    /// the fixpoint replaying exactly the affected cells).
    pub rollback_rate: f64,
    /// Host wall-clock seconds (display only, host-dependent).
    pub wall_secs: f64,
    /// Simulation events per host wall-clock second (host-dependent).
    pub events_per_sec: f64,
}

/// E30 result: the cross-traffic × window-policy grid.
#[derive(Debug, Clone)]
pub struct WindowPolicySweep {
    /// One row per (cross rate, policy), cross rates outermost.
    pub rows: Vec<PolicyPoint>,
    /// Whether every policy produced an identical report at every cross
    /// rate (the experiment doubles as an end-to-end determinism check).
    pub identical: bool,
    /// Rendered table.
    pub table: String,
}

/// E30 — window-policy synchronization cost: barriers per simulated
/// second, rollback rate, and event rate for the conservative, adaptive,
/// and speculative window policies across cross-cell traffic rates. The
/// simulated reports must agree bit-for-bit across policies (rendered in
/// the verdict line); only the synchronization counters and the wall
/// clock may differ. Arms run sequentially for the same reason as E28.
pub fn e30(config: &Config) -> WindowPolicySweep {
    let shards = 4u32;
    let users = config.shard_users[0];
    let think = mega_think(config, users);
    let cross_rates = [0u32, 10, 50, 200];
    let policies: [(&'static str, WindowPolicy); 3] = [
        ("conservative", WindowPolicy::Conservative),
        (
            "adaptive",
            WindowPolicy::Adaptive {
                cap: DEFAULT_LOOKAHEAD_CAP,
            },
        ),
        (
            "speculative",
            WindowPolicy::Speculative {
                cap: DEFAULT_LOOKAHEAD_CAP,
            },
        ),
    ];
    let sim_secs = ((config.lab.warmup + config.lab.measure) * 4).as_nanos() as f64 / 1e9;
    let mut rows: Vec<PolicyPoint> = Vec::new();
    let mut identical = true;
    let mut table = format!(
        "E30: window-policy sync cost ({users} users, {shards} cells, 1ms lookahead, cap {DEFAULT_LOOKAHEAD_CAP})\n cross‰  policy             req/s       events    rounds   barriers  barr/sim-s  rollbacks   replayed   Mev/s\n",
    );
    for &cross in &cross_rates {
        let mut baseline: Option<RunReport> = None;
        for (name, policy) in policies {
            let (report, stats, wall_secs) =
                mega_run_sharded_with(config, users, think, shards, cross, policy);
            let same = baseline.as_ref().is_none_or(|b| {
                b.completed == report.completed
                    && b.events_processed == report.events_processed
                    && b.mean_latency == report.mean_latency
                    && b.latency_p99 == report.latency_p99
                    && b.throughput_rps.to_bits() == report.throughput_rps.to_bits()
            });
            identical &= same;
            if baseline.is_none() {
                baseline = Some(report.clone());
            }
            let barriers_per_sim_sec = stats.barriers as f64 / sim_secs;
            let rollback_rate = stats.rollbacks as f64 / (stats.rounds.max(1)) as f64;
            let events_per_sec = report.events_processed as f64 / wall_secs.max(1e-9);
            let _ = writeln!(
                table,
                "{:>6}  {:<14} {:>9.0} {:>12} {:>9} {:>10} {:>11.0} {:>10} {:>10} {:>7.2}{}",
                cross,
                name,
                report.throughput_rps,
                report.events_processed,
                stats.rounds,
                stats.barriers,
                barriers_per_sim_sec,
                stats.rollbacks,
                stats.replayed_events,
                events_per_sec / 1e6,
                if same { "" } else { "  REPORT DIVERGED" },
            );
            rows.push(PolicyPoint {
                cross_permille: cross,
                policy: name,
                report,
                stats,
                barriers_per_sim_sec,
                rollback_rate,
                wall_secs,
                events_per_sec,
            });
        }
    }
    // Headline: barrier reduction vs conservative at each cross rate.
    for &cross in &cross_rates {
        let arm = |p: &str| {
            rows.iter()
                .find(|r| r.cross_permille == cross && r.policy == p)
                .expect("arm just ran")
                .stats
                .barriers
                .max(1)
        };
        let conservative = arm("conservative");
        let _ = writeln!(
            table,
            "cross {cross:>3}‰: barriers ÷{:>5.1} adaptive, ÷{:>5.1} speculative (vs conservative)",
            conservative as f64 / arm("adaptive") as f64,
            conservative as f64 / arm("speculative") as f64,
        );
    }
    let _ = writeln!(
        table,
        "reports across policies: {}\n(barriers/rounds/rollbacks are deterministic per policy; Mev/s and wall are host measurements)",
        if identical { "identical" } else { "DIVERGED" },
    );
    WindowPolicySweep {
        rows,
        identical,
        table,
    }
}

/// `repro snap` — end-to-end snapshot/resume identity self-check. Runs the
/// configured TeaStore cell straight and checkpointed, compares the
/// reports bit-for-bit, and returns the rendered verdict plus the snapshot
/// bytes (the CLI writes them to `results/snapshot_quick.bin`). `Err`
/// carries the diagnostic when identity is violated.
pub fn snap_check(config: &Config) -> Result<(String, Vec<u8>), String> {
    let lab = &config.lab;
    let app = config.store.app();
    let replicas = config.baseline_replicas();
    let placed = Policy::Unpinned.deploy(app, &lab.topo, &replicas);
    let straight = lab.run_app(app, placed.deployment.clone(), placed.lb);
    let bytes = lab.snapshot_app(
        app,
        placed.deployment.clone(),
        placed.lb,
        SimTime::ZERO + lab.warmup,
    );
    let resumed = lab
        .resume_app(app, placed.deployment, placed.lb, &bytes)
        .map_err(|e| format!("snap: resume failed: {e}"))?;
    let same = straight.completed == resumed.completed
        && straight.events_processed == resumed.events_processed
        && straight.mean_latency == resumed.mean_latency
        && straight.latency_p99 == resumed.latency_p99
        && straight.throughput_rps.to_bits() == resumed.throughput_rps.to_bits();
    if !same {
        return Err(format!(
            "snap: snapshot identity FAILED\n straight: {} done, {} events, mean {}, p99 {}\n resumed:  {} done, {} events, mean {}, p99 {}",
            straight.completed,
            straight.events_processed,
            straight.mean_latency,
            straight.latency_p99,
            resumed.completed,
            resumed.events_processed,
            resumed.mean_latency,
            resumed.latency_p99,
        ));
    }
    let table = format!(
        "snap: snapshot identity: OK\n {} requests, {} events, p99 {} — run-to-warmup → snapshot → resume matches the straight run bit-for-bit\n checkpoint: {} bytes of serialized simulation state at t = {}\n",
        resumed.completed,
        resumed.events_processed,
        resumed.latency_p99,
        bytes.len(),
        lab.warmup,
    );
    Ok((table, bytes))
}

// ----------------------------------------------------------- chaos search

/// `repro chaos` / E29 result: the search report plus presentation forms.
#[derive(Debug, Clone)]
pub struct ChaosStudy {
    /// Measured saturation throughput of the chaos deployment.
    pub capacity_rps: f64,
    /// Offered open-loop load (70% of capacity).
    pub rate_rps: f64,
    /// The full deterministic search report.
    pub report: scaleup::ChaosReport,
    /// Rendered table.
    pub table: String,
}

/// E29 result: the mitigation-grid chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosSweep {
    /// Per arm: `(name, violations, plans, per-invariant counts)`.
    pub rows: Vec<(String, scaleup::ChaosReport)>,
    /// Rendered table.
    pub table: String,
}

/// The mitigation arms of the chaos studies, in presentation order. The
/// resilience knobs are calibrated from the fault-free baseline exactly
/// like E18/E19/E21 (timeout = 4 × baseline p99; breaker open for 8
/// timeouts); the retry budget matches E21's recovering arm.
fn chaos_mitigations(
    baseline: &RunReport,
) -> Vec<(&'static str, Option<ResilienceParams>, Option<OverloadParams>)> {
    let plain = derived_resilience(baseline, false).with_retry(RetryPolicy {
        max_retries: 3,
        ..RetryPolicy::default()
    });
    let breaker = derived_resilience(baseline, true).with_retry(RetryPolicy {
        max_retries: 3,
        ..RetryPolicy::default()
    });
    let budget = OverloadParams::default().with_retry_budget(RetryBudgetPolicy {
        refill_per_success: 0.1,
        cap: 50.0,
        initial: 50.0,
    });
    vec![
        ("none", None, None),
        ("timeout+retry", Some(plain), None),
        ("breaker", Some(breaker.clone()), None),
        ("breaker+budget", Some(breaker), Some(budget)),
    ]
}

/// Builds the chaos harness for one mitigation arm: the overload app at
/// 70% of measured capacity, open loop, with the fault window in the
/// middle of the measurement window and SLO thresholds derived from the
/// arm's own fault-free baseline.
fn chaos_lab(
    config: &Config,
    resilience: Option<ResilienceParams>,
    overload: Option<OverloadParams>,
) -> scaleup::ChaosLab {
    let app = overload_app();
    let mut lab = overload_lab(config, SimDuration::from_millis(500), config.chaos_measure);
    // Probes fan out across plans (and findings); the engine itself stays
    // serial so forked snapshots restore bit-identically.
    lab.shards = 1;
    let capacity_rps = overload_capacity(&lab, &app);
    let rate_rps = 0.7 * capacity_rps;
    lab.engine_params.resilience = resilience;
    lab.engine_params.overload = overload;

    // Thresholds come from a short fault-free probe of *this* arm, so a
    // violation always means "the faults broke this configuration", never
    // "the mitigation has different fault-free behaviour".
    let mut probe = lab.clone();
    probe.warmup = SimDuration::from_millis(500);
    probe.measure = SimDuration::from_secs(2);
    let deployment = overload_deployment(&app, &lab.topo);
    let baseline = probe.run_app_open(&app, deployment.clone(), LbPolicy::LeastOutstanding, rate_rps);

    let space = microsvc::PlanSpace {
        instances: OVERLOAD_REPLICAS as u32,
        from: SimTime::ZERO + lab.warmup + SimDuration::from_millis(500),
        until: SimTime::ZERO + lab.warmup + SimDuration::from_millis(2000),
        events_min: 4,
        events_max: 8,
    };
    let slo = microsvc::SloPolicy {
        p99_ceiling: baseline.latency_p99.mul_f64(8.0),
        goodput_floor: 0.85,
        recovery_frac: 0.9,
        recovery_within: SimDuration::from_secs(1),
        metastable_frac: 0.5,
    };
    scaleup::ChaosLab::new(
        lab,
        app,
        deployment,
        LbPolicy::LeastOutstanding,
        rate_rps,
        space,
        slo,
    )
}

/// `repro chaos` — fault-space search + shrink against the hardened
/// configuration (breaker + retry budget). Samples `config.chaos_plans`
/// plans from the labeled substream `("chaos.plan", index)` under the
/// lab seed, checks each against the SLO oracle by forking one warm
/// snapshot at the trigger instant, and delta-debugs every violation to a
/// minimal reproducer.
pub fn chaos_search(config: &Config) -> ChaosStudy {
    let lab = chaos_harness(config);
    let capacity_rps = lab.rate_rps() / 0.7;
    let rate_rps = lab.rate_rps();
    let report = lab.search(
        config.lab.seed,
        &scaleup::SearchOptions {
            plans: config.chaos_plans,
            shrink: true,
        },
    );
    let mut table = format!(
        "chaos search (breaker+budget arm, open loop at {rate_rps:.0} req/s = 70% of capacity)\n{} plans sampled from substream (\"chaos.plan\", i), seed {}\n",
        report.plans, report.seed,
    );
    let _ = writeln!(
        table,
        "violations: {} / {} plans",
        report.findings.len(),
        report.plans
    );
    for (slo, n) in report.by_invariant() {
        if n > 0 {
            let _ = writeln!(table, "  {slo:<14} {n}");
        }
    }
    for f in &report.findings {
        let s = f.shrunk.as_ref().expect("chaos search shrinks");
        let _ = writeln!(
            table,
            "plan {:04}: size {} -> minimal {} ({} probes, target {})",
            f.index,
            f.plan.size(),
            s.minimal.size(),
            s.probes,
            f.target,
        );
        for line in s.minimal.describe().lines() {
            let _ = writeln!(table, "    {line}");
        }
    }
    let _ = writeln!(
        table,
        "chaos: plans={} violations={} trajectory={:#018x} minimal={:#018x}",
        report.plans,
        report.findings.len(),
        report.trajectory_hash,
        report.minimal_hash,
    );
    ChaosStudy {
        capacity_rps,
        rate_rps,
        report,
        table,
    }
}

/// The `repro chaos` harness: the hardened (breaker + retry-budget) arm of
/// the mitigation grid, ready to probe candidate plans. Public so the
/// determinism and fork-vs-straight differential tests drive the very
/// harness the CLI uses.
pub fn chaos_harness(config: &Config) -> scaleup::ChaosLab {
    let (resilience, overload) = chaos_mitigations_hardened(config);
    chaos_lab(config, resilience, overload)
}

/// The hardened (breaker + budget) arm's knobs, derived from its own
/// baseline — shared by `repro chaos` and the chaos tests.
fn chaos_mitigations_hardened(
    config: &Config,
) -> (Option<ResilienceParams>, Option<OverloadParams>) {
    // Calibrate from a fault-free probe of the *unmitigated* overload lab
    // (mitigations change p99; the timeout must come from somewhere fixed).
    let app = overload_app();
    let mut probe = overload_lab(config, SimDuration::from_millis(500), SimDuration::from_secs(2));
    probe.shards = 1;
    let capacity_rps = overload_capacity(&probe, &app);
    let baseline = probe.run_app_open(
        &app,
        overload_deployment(&app, &probe.topo),
        LbPolicy::LeastOutstanding,
        0.7 * capacity_rps,
    );
    let mut arms = chaos_mitigations(&baseline);
    let (_, resilience, overload) = arms.remove(3);
    (resilience, overload)
}

/// E29 — chaos sweep over the mitigation grid: the same sampled fault
/// space run against no mitigation, timeout+retry, breaker, and
/// breaker+budget. The per-invariant split is the story: naive retries
/// *grow* the violating region (retry storms turn transient faults into
/// recovery/metastability violations — E21 rediscovered by search), while
/// the breaker arms eliminate the p99 and metastability violations and
/// leave only the goodput dents that lost capacity makes unavoidable.
/// No shrinking — the sweep only sizes the violating region per arm.
pub fn e29(config: &Config) -> ChaosSweep {
    let app = overload_app();
    let mut probe = overload_lab(config, SimDuration::from_millis(500), SimDuration::from_secs(2));
    probe.shards = 1;
    let capacity_rps = overload_capacity(&probe, &app);
    let baseline = probe.run_app_open(
        &app,
        overload_deployment(&app, &probe.topo),
        LbPolicy::LeastOutstanding,
        0.7 * capacity_rps,
    );
    let arms = chaos_mitigations(&baseline);
    let opts = scaleup::SearchOptions {
        plans: config.chaos_sweep_plans,
        shrink: false,
    };
    // Arms run sequentially: each arm's search already fans its probes out
    // across the worker pool.
    let rows: Vec<(String, scaleup::ChaosReport)> = arms
        .into_iter()
        .map(|(name, resilience, overload)| {
            let lab = chaos_lab(config, resilience, overload);
            (name.to_owned(), lab.search(config.lab.seed, &opts))
        })
        .collect();

    let mut table = format!(
        "E29: chaos sweep over the mitigation grid ({} plans per arm, seed {})\nconfig            violations      p99     goodput   recovery   metastable\n",
        config.chaos_sweep_plans, config.lab.seed,
    );
    for (name, report) in &rows {
        let by = report.by_invariant();
        let _ = writeln!(
            table,
            "{:<16} {:>6}/{:<6} {:>6} {:>11} {:>10} {:>12}",
            name,
            report.findings.len(),
            report.plans,
            by[0].1,
            by[1].1,
            by[2].1,
            by[3].1,
        );
    }
    table.push_str(
        "each fault plan is replayable from (seed, index) alone; counts are per violated invariant\n",
    );
    ChaosSweep { rows, table }
}

/// CSV of the E29 sweep.
pub fn csv_e29(sweep: &ChaosSweep) -> String {
    let mut csv = String::from(
        "config,plans,violations,p99_ceiling,goodput_floor,recovery,metastable,trajectory_hash\n",
    );
    for (name, report) in &sweep.rows {
        let by = report.by_invariant();
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{},{},{:#018x}",
            name,
            report.plans,
            report.findings.len(),
            by[0].1,
            by[1].1,
            by[2].1,
            by[3].1,
            report.trajectory_hash,
        );
    }
    csv
}

// ------------------------------------------------------- experiment catalog

/// One entry of the experiment catalog: id, one-line title, and coarse
/// wall-clock estimates for CI budgeting (release build, default jobs).
#[derive(Debug, Clone, Copy)]
pub struct CatalogEntry {
    /// Experiment id as the `repro` binary accepts it (`e3`, `a1`, …).
    pub id: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// Estimated `--quick` runtime in seconds.
    pub quick_secs: f64,
    /// Estimated full (paper-scale) runtime in seconds.
    pub full_secs: f64,
    /// Whether the experiment honors `repro --shards N` (its runs route
    /// through the lab's sharded parallel-in-run path). The CI smoke uses
    /// this to pick experiments to exercise with `--shards 2`.
    pub shardable: bool,
}

/// Every experiment the `repro` binary knows, with a one-line description
/// and runtime estimates — drives `repro list` (and its `--json` mode,
/// which the CI smoke uses to pick experiments) and the usage text.
pub fn catalog() -> Vec<CatalogEntry> {
    const fn e(
        id: &'static str,
        title: &'static str,
        quick_secs: f64,
        full_secs: f64,
    ) -> CatalogEntry {
        CatalogEntry {
            id,
            title,
            quick_secs,
            full_secs,
            shardable: false,
        }
    }
    /// A shardable entry: the experiment's runs honor `--shards N`.
    const fn sh(
        id: &'static str,
        title: &'static str,
        quick_secs: f64,
        full_secs: f64,
    ) -> CatalogEntry {
        CatalogEntry {
            id,
            title,
            quick_secs,
            full_secs,
            shardable: true,
        }
    }
    vec![
        e("e1", "platform configuration table", 0.1, 0.1),
        e("e2", "TeaStore services, profiles and request mix", 0.1, 0.1),
        sh("e3", "throughput/latency vs closed-loop users (load curve)", 1.0, 30.0),
        e("e4", "scale-up curve: throughput vs enabled logical CPUs + USL fit", 1.0, 45.0),
        e("e5", "per-service busy CPUs vs load", 1.0, 30.0),
        e("e6", "per-service scaling: replicate one tier at a time + USL", 2.0, 60.0),
        e("e7", "replica tuning of the bottleneck service", 1.0, 30.0),
        sh("e8", "placement-policy comparison at saturation (+22% headline)", 1.0, 30.0),
        e("e9", "latency at matched open load (−18% headline)", 1.0, 20.0),
        e("e10", "SMT on/off at equal core count vs a compute-bound contrast", 1.0, 20.0),
        e("e11", "NUMA locality: local vs remote memory for the data tier", 1.0, 20.0),
        e("e12", "µarch characterization vs reference workloads", 0.5, 5.0),
        e("e13", "scheduler behaviour per placement policy", 1.0, 20.0),
        e("e14", "opportunistic frequency boost extension", 1.0, 20.0),
        e("e15", "simulator vs analytic MVA validation", 0.5, 10.0),
        e("e16", "workload-mix sensitivity extension", 1.0, 30.0),
        e("e17", "CPU-mask enumeration orders at a fixed CPU budget", 1.0, 30.0),
        sh("e18", "slow-replica tail amplification + resilience (faults)", 1.0, 20.0),
        e("e19", "crash and recovery under load (faults)", 1.0, 20.0),
        sh("e20", "overload sweep: admission control vs unbounded queues", 3.0, 30.0),
        sh("e21", "retry-storm metastability; retry budgets recover it", 3.0, 30.0),
        sh("e22", "brownout: priority shedding keeps checkout goodput high", 2.0, 20.0),
        sh("e23", "recovery hysteresis: queue-bound policy vs backlog drain", 3.0, 30.0),
        e("e24", "population scale-up 1k→1M users: events/s and bytes/user", 5.0, 90.0),
        e("e25", "trace memory vs fidelity: head-capped vs reservoir sampling", 2.0, 20.0),
        e("e26", "mega-scale overload: admission sweep at 100k closed-loop users", 5.0, 45.0),
        e("e27", "warm-started sweeps: one shared checkpoint serves a measurement grid", 2.0, 60.0),
        sh("e28", "shard-count scaling: events/s and speedup vs shards (parallel-in-run)", 20.0, 600.0),
        e("e29", "chaos sweep: sampled fault plans vs the mitigation grid", 30.0, 180.0),
        e("e30", "window-policy sync cost: barriers/sim-s, rollbacks vs cross-traffic", 20.0, 300.0),
        e("snap", "snapshot/resume identity self-check (writes results/snapshot_quick.bin)", 1.0, 15.0),
        e("chaos", "fault-space search + shrink (writes results/chaos_report.json)", 30.0, 120.0),
        e("lint", "static determinism & invariant pass (simlint)", 0.1, 0.1),
        e("a1", "ablation: topology-aware packing objective", 1.0, 20.0),
        e("a2", "ablation: load-balancer policy under pod placement", 1.0, 20.0),
        e("a3", "ablation: idle-steal scope of the scheduler", 1.0, 20.0),
        e("a4", "ablation: scheduler quantum vs tail latency", 1.0, 20.0),
    ]
}

/// The catalog as machine-readable JSON (for `repro list --json`).
pub fn catalog_json() -> String {
    let mut out = String::from("[\n");
    let entries = catalog();
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"id\": \"{}\", \"title\": \"{}\", \"quick_est_secs\": {:.1}, \"full_est_secs\": {:.1}, \"shardable\": {}}}",
            e.id, e.title, e.quick_secs, e.full_secs, e.shardable
        );
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

// -------------------------------------------------------------- CSV export

/// CSV of a [`ScalePoint`] series (used by E4/E6/E7 exports).
pub fn csv_scale_points(points: &[ScalePoint]) -> String {
    let mut csv = scaleup::report::Csv::new(&[
        "n",
        "throughput_rps",
        "mean_latency_us",
        "p99_latency_us",
        "cpu_utilization",
    ]);
    for p in points {
        csv.row_f64(&[
            p.n as f64,
            p.throughput_rps,
            p.mean_latency_us,
            p.p99_latency_us,
            p.cpu_utilization,
        ]);
    }
    csv.finish()
}

/// CSV of the E3 load curve.
pub fn csv_e3(curve: &LoadCurve) -> String {
    let mut csv = scaleup::report::Csv::new(&[
        "users",
        "throughput_rps",
        "mean_latency_us",
        "p95_latency_us",
        "p99_latency_us",
        "cpu_utilization",
    ]);
    for (users, r) in &curve.points {
        csv.row_f64(&[
            *users as f64,
            r.throughput_rps,
            r.mean_latency.as_micros_f64(),
            r.latency_p95.as_micros_f64(),
            r.latency_p99.as_micros_f64(),
            r.cpu_utilization,
        ]);
    }
    csv.finish()
}

/// CSV of the E6 per-service scaling curves (long format).
pub fn csv_e6(result: &ServiceScaling) -> String {
    let mut csv = scaleup::report::Csv::new(&[
        "service",
        "replicas",
        "throughput_rps",
        "usl_sigma",
        "usl_kappa",
    ]);
    for (name, points, fit) in &result.services {
        for p in points {
            csv.row(&[
                name,
                &p.n.to_string(),
                &format!("{:.3}", p.throughput_rps),
                &format!("{:.6}", fit.sigma),
                &format!("{:.8}", fit.kappa),
            ]);
        }
    }
    csv.finish()
}

/// CSV of the E8 placement comparison.
pub fn csv_e8(result: &PlacementComparison) -> String {
    let mut csv = scaleup::report::Csv::new(&[
        "policy",
        "throughput_rps",
        "mean_latency_us",
        "p95_latency_us",
        "cpu_utilization",
    ]);
    for (name, r) in &result.rows {
        csv.row(&[
            name,
            &format!("{:.1}", r.throughput_rps),
            &format!("{:.1}", r.mean_latency.as_micros_f64()),
            &format!("{:.1}", r.latency_p95.as_micros_f64()),
            &format!("{:.4}", r.cpu_utilization),
        ]);
    }
    csv.finish()
}

/// CSV of the E9 latency-vs-load comparison (long format).
pub fn csv_e9(result: &LatencyComparison) -> String {
    let mut csv = scaleup::report::Csv::new(&[
        "load_fraction",
        "config",
        "mean_latency_us",
        "p50_us",
        "p95_us",
        "p99_us",
    ]);
    for (f, base, opt) in &result.points {
        for (name, r) in [("baseline", base), ("topology-aware", opt)] {
            csv.row(&[
                &format!("{f:.2}"),
                name,
                &format!("{:.1}", r.mean_latency.as_micros_f64()),
                &format!("{:.1}", r.latency_p50.as_micros_f64()),
                &format!("{:.1}", r.latency_p95.as_micros_f64()),
                &format!("{:.1}", r.latency_p99.as_micros_f64()),
            ]);
        }
    }
    csv.finish()
}

/// CSV of the E15 simulator-vs-MVA validation.
pub fn csv_e15(result: &MvaValidation) -> String {
    let mut csv = scaleup::report::Csv::new(&["users", "sim_rps", "mva_rps"]);
    for &(users, sim, mva) in &result.points {
        csv.row_f64(&[users as f64, sim, mva]);
    }
    csv.finish()
}

/// CSV of an E18/E19 fault study (one row per configuration).
pub fn csv_fault_study(result: &FaultStudy) -> String {
    let mut csv = scaleup::report::Csv::new(&[
        "config",
        "throughput_rps",
        "mean_latency_us",
        "p99_latency_us",
        "timed_out",
        "shed",
        "replies_dropped",
        "rejected_arrivals",
    ]);
    for (name, r) in &result.rows {
        csv.row(&[
            name,
            &format!("{:.1}", r.throughput_rps),
            &format!("{:.1}", r.mean_latency.as_micros_f64()),
            &format!("{:.1}", r.latency_p99.as_micros_f64()),
            &r.requests_timed_out.to_string(),
            &r.requests_shed.to_string(),
            &r.replies_dropped.to_string(),
            &r.rejected_arrivals.to_string(),
        ]);
    }
    csv.finish()
}

/// CSV of the E19 per-bucket throughput traces (long format).
pub fn csv_e19_series(result: &FaultStudy) -> String {
    let mut csv = scaleup::report::Csv::new(&["config", "t_secs", "throughput_rps"]);
    for (name, r) in &result.rows {
        for &(t, rps) in &r.throughput_series {
            csv.row(&[name, &format!("{t:.3}"), &format!("{rps:.1}")]);
        }
    }
    csv.finish()
}

/// CSV of the E20 overload sweep (long format, one row per load × arm).
pub fn csv_e20(result: &OverloadSweep) -> String {
    let mut csv = scaleup::report::Csv::new(&[
        "load_multiple",
        "config",
        "goodput_rps",
        "p99_latency_us",
        "shed",
        "max_queue_depth",
    ]);
    for (m, unbounded, admitted) in &result.rows {
        for (name, r) in [("unbounded", unbounded), ("admission", admitted)] {
            csv.row(&[
                &format!("{m:.2}"),
                name,
                &format!("{:.1}", r.throughput_rps),
                &format!("{:.1}", r.latency_p99.as_micros_f64()),
                &r.overload.total_sheds().to_string(),
                &format!("{:.0}", max_queue_depth(r)),
            ]);
        }
    }
    csv.finish()
}

/// CSV of the E21 per-bucket goodput and queue-depth traces (long format).
pub fn csv_e21_series(result: &MetastabilityStudy) -> String {
    let mut csv =
        scaleup::report::Csv::new(&["config", "t_secs", "goodput_rps", "queue_depth"]);
    for (name, r) in &result.rows {
        let depth: simcore::DetHashMap<u64, f64> = r
            .queue_depth_series
            .iter()
            .map(|&(t, d)| ((t * 1000.0).round() as u64, d))
            .collect();
        for &(t, rps) in &r.throughput_series {
            let d = depth
                .get(&((t * 1000.0).round() as u64))
                .copied()
                .unwrap_or(0.0);
            csv.row(&[
                name,
                &format!("{t:.3}"),
                &format!("{rps:.1}"),
                &format!("{d:.0}"),
            ]);
        }
    }
    csv.finish()
}

/// CSV of the E22 per-class goodput (one row per arm × class).
pub fn csv_e22(result: &BrownoutStudy) -> String {
    let mut csv = scaleup::report::Csv::new(&[
        "config",
        "class",
        "submitted",
        "shed",
        "goodput_fraction",
    ]);
    for (arm, classes) in &result.class_goodput {
        for (class, submitted, failed, goodput) in classes {
            csv.row(&[
                arm,
                class,
                &submitted.to_string(),
                &failed.to_string(),
                &format!("{goodput:.4}"),
            ]);
        }
    }
    csv.finish()
}

/// CSV of the E23 recovery study (one row per arm).
pub fn csv_e23(result: &RecoveryStudy) -> String {
    let mut csv = scaleup::report::Csv::new(&[
        "config",
        "goodput_rps",
        "p99_latency_us",
        "shed",
        "max_queue_depth",
        "drain_secs_after_burst",
    ]);
    for (name, r, drain) in &result.rows {
        csv.row(&[
            name,
            &format!("{:.1}", r.throughput_rps),
            &format!("{:.1}", r.latency_p99.as_micros_f64()),
            &r.overload.total_sheds().to_string(),
            &format!("{:.0}", max_queue_depth(r)),
            &drain.map(|s| format!("{s:.2}")).unwrap_or_default(),
        ]);
    }
    csv.finish()
}

/// CSV of the E24 population sweep (one row per population).
pub fn csv_e24(result: &PopulationScale) -> String {
    let mut csv = scaleup::report::Csv::new(&[
        "users",
        "think_ms",
        "throughput_rps",
        "p99_latency_us",
        "events",
        "events_per_sec",
        "bytes_per_user",
    ]);
    for p in &result.rows {
        csv.row(&[
            &p.users.to_string(),
            &format!("{:.1}", p.think.as_secs_f64() * 1e3),
            &format!("{:.1}", p.report.throughput_rps),
            &format!("{:.1}", p.report.latency_p99.as_micros_f64()),
            &p.report.events_processed.to_string(),
            &format!("{:.0}", p.events_per_sec),
            &format!("{:.1}", p.bytes_per_user),
        ]);
    }
    csv.finish()
}

/// CSV of the E25 tracing comparison (one row per arm).
pub fn csv_e25(result: &TraceFidelity) -> String {
    let off_footprint = result.rows[0].report.engine_footprint_bytes;
    let mut csv = scaleup::report::Csv::new(&[
        "mode",
        "traces_retained",
        "trace_bytes",
        "est_p99_us",
        "true_p99_us",
        "completed",
    ]);
    for arm in &result.rows {
        csv.row(&[
            arm.mode,
            &arm.report.traces_retained.to_string(),
            &arm
                .report
                .engine_footprint_bytes
                .saturating_sub(off_footprint)
                .to_string(),
            &arm.trace_p99
                .map(|p| format!("{:.1}", p.as_micros_f64()))
                .unwrap_or_default(),
            &format!("{:.1}", result.rows[0].report.latency_p99.as_micros_f64()),
            &arm.report.completed.to_string(),
        ]);
    }
    csv.finish()
}

/// CSV of the E26 mega-scale overload sweep (same shape as E20's).
pub fn csv_e26(result: &MegaOverload) -> String {
    let mut csv = scaleup::report::Csv::new(&[
        "load_multiple",
        "config",
        "goodput_rps",
        "p99_latency_us",
        "shed",
        "max_queue_depth",
    ]);
    for (m, unbounded, admitted) in &result.rows {
        for (name, r) in [("unbounded", unbounded), ("admission", admitted)] {
            csv.row(&[
                &format!("{m:.2}"),
                name,
                &format!("{:.1}", r.throughput_rps),
                &format!("{:.1}", r.latency_p99.as_micros_f64()),
                &r.overload.total_sheds().to_string(),
                &format!("{:.0}", max_queue_depth(r)),
            ]);
        }
    }
    csv.finish()
}

/// CSV of the E28 shard-scaling sweep (one row per population × shards).
pub fn csv_e28(result: &ShardScaling) -> String {
    let mut csv = scaleup::report::Csv::new(&[
        "users",
        "shards",
        "throughput_rps",
        "events",
        "events_per_sec",
        "speedup",
    ]);
    for p in &result.rows {
        csv.row(&[
            &p.users.to_string(),
            &p.shards.to_string(),
            &format!("{:.1}", p.report.throughput_rps),
            &p.report.events_processed.to_string(),
            &format!("{:.0}", p.events_per_sec),
            &format!("{:.3}", p.speedup),
        ]);
    }
    csv.finish()
}

/// CSV of the E30 window-policy sweep.
pub fn csv_e30(result: &WindowPolicySweep) -> String {
    let mut csv = scaleup::report::Csv::new(&[
        "cross_permille",
        "policy",
        "throughput_rps",
        "events",
        "rounds",
        "windows",
        "barriers",
        "barriers_per_sim_sec",
        "rollbacks",
        "replayed_events",
        "rollback_rate",
        "wall_secs",
        "events_per_sec",
    ]);
    for p in &result.rows {
        csv.row(&[
            &p.cross_permille.to_string(),
            p.policy,
            &format!("{:.1}", p.report.throughput_rps),
            &p.report.events_processed.to_string(),
            &p.stats.rounds.to_string(),
            &p.stats.windows.to_string(),
            &p.stats.barriers.to_string(),
            &format!("{:.1}", p.barriers_per_sim_sec),
            &p.stats.rollbacks.to_string(),
            &p.stats.replayed_events.to_string(),
            &format!("{:.4}", p.rollback_rate),
            &format!("{:.3}", p.wall_secs),
            &format!("{:.0}", p.events_per_sec),
        ]);
    }
    csv.finish()
}

/// CSV rows of one E27 arm; the cold and warm arms must render identically.
pub fn csv_e27_arm(rows: &[(u64, SimDuration, RunReport)]) -> String {
    let mut csv = scaleup::report::Csv::new(&[
        "users",
        "extent_us",
        "completed",
        "events",
        "throughput_rps",
        "p99_latency_us",
    ]);
    for (users, extent, r) in rows {
        csv.row(&[
            &users.to_string(),
            &format!("{:.0}", extent.as_micros_f64()),
            &r.completed.to_string(),
            &r.events_processed.to_string(),
            &format!("{:.3}", r.throughput_rps),
            &format!("{:.1}", r.latency_p99.as_micros_f64()),
        ]);
    }
    csv.finish()
}

/// CSV of the E27 grid (the warm arm; identical to the cold arm by the
/// study's own check).
pub fn csv_e27(result: &WarmStartStudy) -> String {
    csv_e27_arm(&result.warm)
}

// ---------------------------------------------------------------- ablations

/// Ablation A1 — bin-packing objective of the topology-aware policy.
pub fn ablate_objective(config: &Config) -> String {
    let mut out =
        String::from("A1: topology-aware packing objective\nobjective        req/s     mean\n");
    let rows = scaleup::par::map(
        vec![
            ("cpu-only", Objective::CpuOnly),
            ("cache-only", Objective::CacheOnly),
            ("combined", Objective::Combined),
        ],
        |(name, objective)| {
            let placed =
                placement::topology_aware(config.store.app(), &config.lab.topo, None, objective);
            (name, config.lab.run_placed(config.store.app(), placed))
        },
    );
    for (name, r) in rows {
        let _ = writeln!(
            out,
            "{:<14} {:>7.0} {:>8}",
            name, r.throughput_rps, r.mean_latency
        );
    }
    out
}

/// Ablation A2 — load-balancer policy under the pod placement.
pub fn ablate_lb(config: &Config) -> String {
    let mut out =
        String::from("A2: LB policy under pod placement\nlb                   req/s     mean\n");
    let rows = scaleup::par::map(
        vec![
            ("round-robin", LbPolicy::RoundRobin),
            ("least-outstanding", LbPolicy::LeastOutstanding),
            ("locality-aware", LbPolicy::LocalityAware),
        ],
        |(name, lb)| {
            let mut placed = Policy::TopologyAware { ccxs: None }.deploy(
                config.store.app(),
                &config.lab.topo,
                &[],
            );
            placed.lb = lb;
            (name, config.lab.run_placed(config.store.app(), placed))
        },
    );
    for (name, r) in rows {
        let _ = writeln!(
            out,
            "{:<18} {:>8.0} {:>8}",
            name, r.throughput_rps, r.mean_latency
        );
    }
    out
}

/// Ablation A3 — idle-stealing scope of the scheduler (baseline deployment).
pub fn ablate_balance(config: &Config) -> String {
    let replicas = config.baseline_replicas();
    let mut out = String::from(
        "A3: idle-steal scope (unpinned baseline)\nscope          req/s     mean       mig/s\n",
    );
    let rows = scaleup::par::map(
        vec![
            ("none", 0u8, false),
            ("core", 0, true),
            ("ccx", 1, true),
            ("machine", 5, true),
        ],
        |(name, level, enabled)| {
            let mut lab = config.lab.clone();
            lab.engine_params.sched.steal_enabled = enabled;
            lab.engine_params.sched.steal_max_level = level;
            (name, lab.run_policy(&config.store, Policy::Unpinned, &replicas))
        },
    );
    for (name, r) in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>8.0} {:>8} {:>11.0}",
            name,
            r.throughput_rps,
            r.mean_latency,
            r.sched.migrations as f64 / r.window.as_secs_f64(),
        );
    }
    out
}

/// Ablation A4 — scheduler quantum vs. tail latency (baseline deployment).
pub fn ablate_quantum(config: &Config) -> String {
    let replicas = config.baseline_replicas();
    let mut out = String::from(
        "A4: scheduler quantum (unpinned baseline)\nquantum       req/s      p99       csw/s\n",
    );
    let rows = scaleup::par::map(vec![1u64, 3, 10, 30], |ms| {
        let mut lab = config.lab.clone();
        lab.engine_params.sched.quantum = SimDuration::from_millis(ms);
        (ms, lab.run_policy(&config.store, Policy::Unpinned, &replicas))
    });
    for (ms, r) in rows {
        let _ = writeln!(
            out,
            "{:>5} ms {:>10.0} {:>9} {:>11.0}",
            ms,
            r.throughput_rps,
            r.latency_p99,
            r.sched.context_switches as f64 / r.window.as_secs_f64(),
        );
    }
    out
}

/// Topology sanity used by the `repro` binary's `check` subcommand: the
/// headline gap, quickly, on the full machine with a short window.
pub fn headline_check(seed: u64) -> PlacementComparison {
    let config = Config::paper(seed);
    e8(&config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cputopo::Topology;

    fn quick() -> Config {
        Config::quick(7)
    }

    #[test]
    fn e1_e2_render() {
        let c = quick();
        assert!(e1(&c).contains("logical CPUs"));
        assert!(e2(&c).contains("webui"));
        assert!(e2(&c).contains("product"));
    }

    #[test]
    fn e3_load_curve_rises_then_saturates() {
        let c = quick();
        let curve = e3(&c);
        assert_eq!(curve.points.len(), c.user_sweep.len());
        let first = curve.points.first().expect("points").1.throughput_rps;
        let last = curve.points.last().expect("points").1.throughput_rps;
        assert!(
            last > first,
            "throughput must grow with load: {first} → {last}"
        );
    }

    #[test]
    fn e4_scaleup_is_sublinear_but_rising() {
        let c = quick();
        let curve = e4(&c);
        let first = &curve.points[0];
        let last = curve.points.last().expect("points");
        assert!(last.throughput_rps > 1.5 * first.throughput_rps);
        // Sub-linear: efficiency at the top below 100%.
        let eff = (last.throughput_rps / last.n as f64) / (curve.fit.lambda.max(1e-9));
        assert!(eff < 1.05, "efficiency {eff}");
    }

    #[test]
    fn e6_bottleneck_service_has_higher_contention() {
        let c = quick();
        let result = e6(&c);
        assert_eq!(result.services.len(), 5);
        assert!(result.table.contains("webui"));
        for (_, points, _) in &result.services {
            assert_eq!(points.len(), c.replica_sweep.len());
        }
    }

    #[test]
    fn e8_topology_aware_wins_on_quick_config_too() {
        let c = quick();
        let cmp = e8(&c);
        assert_eq!(cmp.rows.len(), 6);
        // On the small machine the gap is smaller but must not be negative
        // by much — the policy must never be a regression.
        assert!(cmp.uplift_pct > -5.0, "uplift {}", cmp.uplift_pct);
    }

    #[test]
    fn e10_smt_speedup_is_modest() {
        let c = quick();
        let smt = e10(&c);
        let gain = smt.smt2_rps / smt.smt1_rps;
        assert!(gain > 0.9 && gain < 2.0, "SMT gain {gain}");
    }

    #[test]
    fn e11_local_beats_remote() {
        let c = quick();
        let numa = e11(&c);
        // desktop_8c has one NUMA node → experiment reports a skip.
        assert!(numa.table.contains("skipped"));
        let paper = Config {
            lab: Lab {
                topo: Arc::new(Topology::zen2_2p_128c()),
                ..Lab::small(3)
            },
            ..quick()
        };
        let numa = e11(&paper);
        assert!(
            numa.local_rps > numa.remote_rps,
            "{} vs {}",
            numa.local_rps,
            numa.remote_rps
        );
    }

    #[test]
    fn e12_microservices_look_different_from_compute() {
        let c = quick();
        let table = e12(&c);
        assert!(table.contains("spec-int-like"));
        assert!(table.contains("webui"));
    }

    #[test]
    fn ablations_render() {
        let c = quick();
        assert!(ablate_lb(&c).contains("locality-aware"));
        assert!(ablate_quantum(&c).contains("ms"));
    }

    #[test]
    fn e18_breaker_tames_the_tail() {
        let c = quick();
        let study = e18(&c);
        assert_eq!(study.rows.len(), 4);
        let p99 = |i: usize| study.rows[i].1.latency_p99;
        let (healthy, slow, breaker) = (p99(0), p99(1), p99(3));
        // The fault must bite, and the breaker must claw most of it back —
        // the acceptance criterion of the resilience layer.
        assert!(
            slow > healthy.mul_f64(3.0),
            "slow replica did not amplify the tail: {slow} vs {healthy}"
        );
        assert!(
            breaker < slow.mul_f64(0.5),
            "breaker failed to reduce tail amplification: {breaker} vs {slow}"
        );
        assert!(
            study.rows[3].1.throughput_rps > study.rows[1].1.throughput_rps,
            "breaker should also recover throughput"
        );
    }

    #[test]
    fn catalog_covers_every_runnable_experiment() {
        let names: Vec<&str> = catalog().iter().map(|e| e.id).collect();
        for e in 1..=30 {
            assert!(names.contains(&format!("e{e}").as_str()), "missing e{e}");
        }
        for a in 1..=4 {
            assert!(names.contains(&format!("a{a}").as_str()), "missing a{a}");
        }
        for extra in ["lint", "snap", "chaos"] {
            assert!(names.contains(&extra), "missing {extra}");
        }
    }

    #[test]
    fn e30_policies_agree_and_pay_as_you_go_cuts_barriers() {
        let mut c = quick();
        // One small population: the unit test checks the contract, not the
        // full sweep (that's `repro e30`).
        c.shard_users = vec![1_000];
        let sweep = e30(&c);
        assert!(sweep.identical, "window policies diverged:\n{}", sweep.table);
        // 4 cross rates × 3 policies.
        assert_eq!(sweep.rows.len(), 12);
        let arm = |cross: u32, policy: &str| {
            sweep
                .rows
                .iter()
                .find(|r| r.cross_permille == cross && r.policy == policy)
                .expect("arm present")
        };
        for r in &sweep.rows {
            // Conservative never speculates, so it can never roll back.
            if r.policy == "conservative" {
                assert_eq!(r.stats.rollbacks, 0, "cross {}", r.cross_permille);
            }
        }
        // With no cross traffic the wide-round policies amortize the
        // lockstep cost: at least a 4x barrier reduction.
        let quiet_floor = arm(0, "conservative").stats.barriers;
        assert!(
            arm(0, "adaptive").stats.barriers * 4 <= quiet_floor,
            "adaptive barriers {} vs conservative {quiet_floor}",
            arm(0, "adaptive").stats.barriers
        );
        assert!(
            arm(0, "speculative").stats.barriers * 4 <= quiet_floor,
            "speculative barriers {} vs conservative {quiet_floor}",
            arm(0, "speculative").stats.barriers
        );
        // Dense cross traffic must actually exercise the rollback path.
        assert!(
            arm(200, "speculative").stats.rollbacks > 0,
            "expected rollbacks at 200‰:\n{}",
            sweep.table
        );
    }

    #[test]
    fn e27_warm_start_matches_cold_and_skips_the_prefix() {
        let c = quick();
        let study = e27(&c);
        assert_eq!(study.cold.len(), study.warm.len());
        assert!(study.identical, "warm-started grid diverged:\n{}", study.table);
        assert_eq!(
            csv_e27_arm(&study.cold),
            csv_e27_arm(&study.warm),
            "cold and warm CSV must be identical"
        );
        // Every cell completed work after the checkpoint.
        assert!(study.warm.iter().all(|(_, _, r)| r.completed > 0));
    }

    #[test]
    fn snap_check_passes_on_the_quick_config() {
        let (table, bytes) = snap_check(&quick()).expect("identity should hold");
        assert!(table.contains("snapshot identity: OK"));
        assert!(!bytes.is_empty());
    }

    #[test]
    fn e20_admission_control_caps_the_overload_tail() {
        let c = quick();
        let sweep = e20(&c);
        assert!(sweep.capacity_rps > 100.0, "capacity {}", sweep.capacity_rps);
        let (m, unbounded, admitted) = sweep.rows.last().expect("has rows");
        assert!(*m >= 2.0);
        // Unbounded queues under 3× load: tail explodes, nothing is shed.
        assert_eq!(unbounded.overload.total_sheds(), 0);
        assert!(
            unbounded.latency_p99 > admitted.latency_p99.mul_f64(5.0),
            "admission must cut the overload tail: {} vs {}",
            admitted.latency_p99,
            unbounded.latency_p99
        );
        // Admission control sheds the excess instead of queueing it, and
        // still delivers goodput within 25% of the unbounded arm's.
        assert!(admitted.overload.total_sheds() > 0);
        assert!(admitted.throughput_rps > 0.75 * unbounded.throughput_rps);
        // The queue-depth series must reflect the bound.
        assert!(max_queue_depth(admitted) <= 65.0 * OVERLOAD_REPLICAS as f64);
        // At half load the two arms behave identically: no sheds anywhere.
        let (_, low_unbounded, low_admitted) = &sweep.rows[0];
        assert_eq!(low_admitted.overload.total_sheds(), 0);
        assert!((low_admitted.throughput_rps - low_unbounded.throughput_rps).abs() < 1.0);
    }

    #[test]
    fn e21_retry_budget_recovers_the_metastable_failure() {
        let c = quick();
        let study = e21(&c);
        // Without a budget the retry storm outlives its trigger: goodput
        // stays below 10% of pre-trigger for at least 30 simulated seconds.
        assert!(
            study.no_budget_pinned_secs >= 30.0,
            "no-budget arm recovered too fast ({}s) — not metastable",
            study.no_budget_pinned_secs
        );
        // With the budget, goodput recovers past 90% of pre-trigger.
        assert!(
            study.budget_recovered_pct > 90.0,
            "budget arm recovered only to {:.1}%",
            study.budget_recovered_pct
        );
        assert!(
            study.budget_recovery_secs.is_some(),
            "budget arm never sustained 90% of pre-trigger goodput"
        );
        // The budget must actually have denied retries during the storm.
        assert!(study.rows[1].1.overload.budget_denied > 0);
        assert_eq!(study.rows[0].1.overload.budget_denied, 0);
    }

    #[test]
    fn e22_priority_shedding_protects_checkout() {
        let c = quick();
        let study = e22(&c);
        // The brownout headline: checkout goodput stays ≥95% under 1.6×
        // overload while browse is shed.
        assert!(
            study.checkout_goodput >= 0.95,
            "checkout goodput {:.3}",
            study.checkout_goodput
        );
        assert!(
            study.browse_goodput < 0.80,
            "browse was not shed: {:.3}",
            study.browse_goodput
        );
        // The class-blind arm cannot protect checkout: it sheds everyone
        // roughly equally, so checkout lands well below the priority arm.
        let blind_checkout = study.class_goodput[0].1[1].3;
        assert!(
            blind_checkout < 0.90,
            "class-blind checkout goodput {blind_checkout:.3}"
        );
    }

    #[test]
    fn e23_bounded_queues_drain_faster_than_unbounded() {
        let c = quick();
        let study = e23(&c);
        assert_eq!(study.rows.len(), 4);
        let drain = |i: usize| study.rows[i].2;
        let unbounded = drain(0).unwrap_or(f64::INFINITY);
        for i in 1..4 {
            let bounded = drain(i).unwrap_or(f64::INFINITY);
            assert!(
                bounded < unbounded,
                "{} drained in {bounded}s, not faster than unbounded's {unbounded}s",
                study.rows[i].0
            );
        }
        // The backlog is the hysteresis: unbounded must carry one for a
        // meaningful fraction of a second after the trigger ends.
        assert!(unbounded > 0.5, "unbounded drained in {unbounded}s");
    }

    #[test]
    fn e19_resilience_recovers_the_crash_dip() {
        let c = quick();
        let study = e19(&c);
        assert_eq!(study.rows.len(), 3);
        let baseline = &study.rows[0].1;
        let bare = &study.rows[1].1;
        let resilient = &study.rows[2].1;
        // Without resilience the dead replica black-holes closed-loop users.
        assert!(
            bare.throughput_rps < baseline.throughput_rps * 0.7,
            "no-resilience crash should depress throughput: {} vs {}",
            bare.throughput_rps,
            baseline.throughput_rps
        );
        assert!(bare.rejected_arrivals > 0, "crash never refused an arrival");
        // With timeouts+retries+breaker the window average stays close.
        assert!(
            resilient.throughput_rps > baseline.throughput_rps * 0.9,
            "resilience failed to recover the dip: {} vs {}",
            resilient.throughput_rps,
            baseline.throughput_rps
        );
        assert!(
            min_throughput_bucket(resilient) > min_throughput_bucket(bare),
            "resilient dip must be shallower than the bare one"
        );
    }
}
