//! `labctl` — run one ad-hoc scale-up measurement from the command line.
//!
//! ```text
//! labctl [--topology 2P|1P|desktop|SxNxDxXxCxT] [--policy NAME] [--mix browse|buy|login]
//!        [--users N] [--think MS] [--budget N] [--seed N] [--measure MS]
//!        [--cpus LIST] [--trace N] [--plot]
//!
//! labctl --policy topology-aware --users 4096
//! labctl --topology 1x1x4x2x4x2 --policy ccx-aware --users 512 --plot
//! labctl --cpus 0-31 --users 256            # taskset-style mask sweep point
//! ```
//!
//! `--topology SxNxDxXxCxT` builds a custom machine: sockets × NUMA/socket ×
//! CCDs/NUMA × CCXs/CCD × cores/CCX × threads/core. `--cpus` confines every
//! instance to a Linux-style cpulist. `--trace N` samples every N-th request
//! and prints three span waterfalls.

use cputopo::{cpulist, Topology, TopologyBuilder};
use loadgen::ClosedLoop;
use microsvc::{
    Deployment, Engine, EngineParams, InstanceConfig, LbPolicy, ServiceId, WindowPolicy,
    DEFAULT_LOOKAHEAD_CAP,
};
use scaleup::placement::Policy;
use scaleup::{tuner, Lab};
use simcore::{SimDuration, SimTime};
use std::sync::Arc;
use teastore::{MixProfile, TeaStore};

fn usage() -> ! {
    eprintln!(
        "usage: labctl [options]\n\
         --topology 2P|1P|desktop|SxNxDxXxCxT   machine (default 2P)\n\
         --policy unpinned|packed|spread-sockets|ccx-aware|numa-aware|topology-aware\n\
         --mix browse|buy|login                 request mix (default browse)\n\
         --users N                              closed-loop users (default 2048)\n\
         --think MS                             think time ms (default 10)\n\
         --budget N                             baseline instance budget (default 64)\n\
         --measure MS                           measurement window ms (default 1500)\n\
         --seed N                               master seed (default 42)\n\
         --shards N                             parallel-in-run cells (default 1)\n\
         --speculate                            speculative window sync (fixed wide rounds)\n\
         --lookahead-cap N                      round width cap in windows; alone it\n\
                                                selects adaptive sync (default 32)\n\
         --cpus LIST                            confine all instances to a cpulist\n\
         --trace N                              sample every N-th request, print waterfalls\n\
         --plot                                 ASCII plot of per-window throughput"
    );
    std::process::exit(2);
}

fn parse_topology(spec: &str) -> Topology {
    match spec {
        "2P" => Topology::zen2_2p_128c(),
        "1P" => Topology::zen2_1p_64c(),
        "desktop" => Topology::desktop_8c(),
        custom => {
            let parts: Vec<u32> = custom
                .split('x')
                .map(|p| p.parse().unwrap_or_else(|_| usage()))
                .collect();
            if parts.len() != 6 {
                usage();
            }
            TopologyBuilder::new(&format!("custom {custom}"))
                .sockets(parts[0])
                .numa_per_socket(parts[1])
                .ccds_per_numa(parts[2])
                .ccxs_per_ccd(parts[3])
                .cores_per_ccx(parts[4])
                .threads_per_core(parts[5])
                .build()
        }
    }
}

fn parse_policy(name: &str) -> Policy {
    match name {
        "unpinned" => Policy::Unpinned,
        "packed" => Policy::Packed,
        "spread-sockets" => Policy::SpreadSockets,
        "ccx-aware" => Policy::CcxAware,
        "numa-aware" => Policy::NumaAware,
        "topology-aware" => Policy::TopologyAware { ccxs: None },
        _ => usage(),
    }
}

struct Options {
    topology: Topology,
    policy: Policy,
    mix: MixProfile,
    users: u64,
    think_ms: u64,
    budget: usize,
    measure_ms: u64,
    seed: u64,
    shards: u32,
    speculate: bool,
    lookahead_cap: Option<u32>,
    cpus: Option<String>,
    trace: Option<u64>,
    plot: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        topology: Topology::zen2_2p_128c(),
        policy: Policy::Unpinned,
        mix: MixProfile::Browse,
        users: 2048,
        think_ms: 10,
        budget: 64,
        measure_ms: 1500,
        seed: 42,
        shards: 1,
        speculate: false,
        lookahead_cap: None,
        cpus: None,
        trace: None,
        plot: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = || iter.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--topology" => opts.topology = parse_topology(&value()),
            "--policy" => opts.policy = parse_policy(&value()),
            "--mix" => {
                opts.mix = match value().as_str() {
                    "browse" => MixProfile::Browse,
                    "buy" => MixProfile::BuyHeavy,
                    "login" => MixProfile::LoginStorm,
                    _ => usage(),
                }
            }
            "--users" => opts.users = value().parse().unwrap_or_else(|_| usage()),
            "--think" => opts.think_ms = value().parse().unwrap_or_else(|_| usage()),
            "--budget" => opts.budget = value().parse().unwrap_or_else(|_| usage()),
            "--measure" => opts.measure_ms = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value().parse().unwrap_or_else(|_| usage()),
            "--shards" => opts.shards = value().parse().unwrap_or_else(|_| usage()),
            "--speculate" => opts.speculate = true,
            "--lookahead-cap" => {
                opts.lookahead_cap = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            "--cpus" => opts.cpus = Some(value()),
            "--trace" => opts.trace = Some(value().parse().unwrap_or_else(|_| usage())),
            "--plot" => opts.plot = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

/// `--speculate` selects fixed wide rounds; `--lookahead-cap` alone
/// selects adaptive widening; neither keeps the conservative default.
fn shard_policy(speculate: bool, cap: Option<u32>) -> WindowPolicy {
    match (speculate, cap) {
        (true, cap) => WindowPolicy::Speculative {
            cap: cap.unwrap_or(DEFAULT_LOOKAHEAD_CAP),
        },
        (false, Some(cap)) => WindowPolicy::Adaptive { cap },
        (false, None) => WindowPolicy::Conservative,
    }
}

fn main() {
    let opts = parse_args();
    let topo = Arc::new(opts.topology);
    let store = TeaStore::with_mix(opts.mix);
    let replicas = tuner::proportional_replicas(store.app(), opts.budget);

    println!("{}\n", topo.summary());

    // Build the deployment: either a policy placement or a cpulist mask.
    let (deployment, lb) = if let Some(list) = &opts.cpus {
        let mask = cpulist::parse(list).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        println!(
            "confining every instance to CPUs {}",
            cpulist::format(&mask)
        );
        let mut deployment = Deployment::empty(store.app());
        for (svc, &n) in replicas.iter().enumerate() {
            for _ in 0..n {
                deployment.add_instance(
                    ServiceId(svc as u32),
                    InstanceConfig {
                        affinity: mask.clone(),
                        threads: store.app().services()[svc].default_threads,
                        mem_node: None,
                    },
                );
            }
        }
        (deployment, LbPolicy::RoundRobin)
    } else {
        let reps: &[usize] = if matches!(opts.policy, Policy::TopologyAware { .. }) {
            &[]
        } else {
            &replicas
        };
        let placed = opts.policy.deploy(store.app(), &topo, reps);
        println!(
            "policy {} → {} instances, LB {:?}",
            opts.policy.name(),
            placed.deployment.total_instances(),
            placed.lb
        );
        (placed.deployment, placed.lb)
    };

    // Run with tracing and per-window throughput if asked.
    let lab = Lab {
        topo: topo.clone(),
        engine_params: EngineParams {
            lb,
            trace_sample_every: opts.trace,
            ..EngineParams::default()
        },
        seed: opts.seed,
        users: opts.users,
        think: SimDuration::from_millis(opts.think_ms),
        warmup: SimDuration::from_millis(750),
        measure: SimDuration::from_millis(opts.measure_ms),
        checkpoint: false,
        shards: opts.shards.max(1),
        shard_cross_permille: 50,
        shard_latency: SimDuration::from_millis(1),
        shard_workers: 0,
        shard_policy: shard_policy(opts.speculate, opts.lookahead_cap),
    };
    if lab.shards > 1 {
        // Sharded runs go through the lab's cell builder; per-request traces
        // stay a serial-run feature for now.
        if opts.trace.is_some() {
            eprintln!("note: --trace is ignored with --shards > 1");
        }
        let report = lab.run_app(store.app(), deployment, lb);
        println!("{}", report.summary());
        println!(
            "{} shards, {} events total",
            lab.shards, report.events_processed
        );
        return;
    }
    let mix = store.mix();
    let mut engine = Engine::new(
        topo,
        lab.engine_params.clone(),
        store.app().clone(),
        deployment,
        lab.seed,
    );
    let mut load = ClosedLoop::new(lab.users)
        .think_time(lab.think)
        .mix(&mix)
        .warmup(lab.warmup)
        .measure(lab.measure);
    engine.run(&mut load, SimTime::ZERO + (lab.warmup + lab.measure) * 4);
    let report = engine.report();
    println!("{}", report.summary());

    if opts.plot {
        // Rebuild a per-class completion series from the per-class table:
        // cheap plot of throughput share per class.
        let points: Vec<(f64, f64)> = report
            .per_class
            .iter()
            .enumerate()
            .map(|(i, (_, n, _))| (i as f64, *n as f64))
            .collect();
        println!(
            "{}",
            scaleup::report::ascii_plot(
                "completions per request class (index order)",
                &points,
                48,
                10
            )
        );
        for (i, (name, n, mean)) in report.per_class.iter().enumerate() {
            println!("  [{i}] {name:<12} {n:>8} done, mean {mean}");
        }
    }

    if opts.trace.is_some() {
        let names: Vec<&str> = store
            .app()
            .services()
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        let complete: Vec<_> = engine
            .traces()
            .iter()
            .filter(|t| t.completed.is_some())
            .collect();
        println!("\n{} traces collected; first three:\n", complete.len());
        for trace in complete.iter().take(3) {
            println!("{}", trace.waterfall(&names));
        }
    }
}
