//! `repro` — regenerates every table and figure of the study.
//!
//! ```text
//! repro [--quick] [--seed N] [--jobs N] [--csv DIR] [--html FILE] <experiment>...
//! repro all                    # everything, in order
//! repro list                   # enumerate every experiment with a description
//! repro list --json            # the catalog as JSON (id, title, runtime estimates)
//! repro e8 e9                  # just the headline pair
//! repro --csv results e4 e8    # also write plot-ready CSV files
//! repro --jobs 1 all           # force a sequential sweep (byte-identical)
//! repro perf                   # simulator self-benchmark -> results/BENCH_simperf.json
//! repro lint                   # static determinism & invariant pass (simlint)
//! repro snap                   # snapshot/resume identity check -> results/snapshot_quick.bin
//! repro chaos                  # fault-space search + shrink -> results/chaos_report.json
//! ```
//!
//! Experiments: e1 … e27 (e14–e19 are extensions/validation, e20–e23 the
//! overload & metastability studies, e24–e26 the mega-scale studies, e27
//! the warm-started checkpoint sweep),
//! ablations: a1 (packing objective) a2 (LB) a3 (steal scope) a4 (quantum),
//! plus `perf`, the simulator self-benchmark.
//!
//! Sweeps run on the work-stealing pool in `scaleup::par`; `--jobs N` caps
//! the workers (default: all CPUs). Results are merged in sweep order, so
//! any `--jobs` value produces byte-identical reports.

use scaleup_bench::experiments as exp;
use scaleup_bench::Config;
use std::time::Instant;

const ALL: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21", "e22", "e23", "e24", "e25", "e26", "e27", "e28",
    "e29", "e30", "a1", "a2", "a3", "a4",
];

fn list(json: bool) -> ! {
    if json {
        print!("{}", exp::catalog_json());
    } else {
        for e in exp::catalog() {
            println!("{:<5} {}  (~{:.0}s quick / ~{:.0}s full)", e.id, e.title, e.quick_secs, e.full_secs);
        }
        println!("perf  simulator self-benchmark (writes results/BENCH_simperf.json)");
    }
    std::process::exit(0);
}

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--seed N] [--jobs N] [--shards N] [--csv DIR] [--html FILE] [--gate BASELINE.json] <e1..e30 | a1..a4 | perf | snap | chaos | all>...\n\
         e1  platform table          e8  placement comparison (+22% headline)\n\
         e2  TeaStore table          e9  latency at fixed load (−18% headline)\n\
         e3  load curve              e10 SMT study\n\
         e4  scale-up curve          e11 NUMA locality\n\
         e5  per-service util        e12 µarch characterization\n\
         e6  per-service USL         e13 scheduler behaviour\n\
         e7  replica tuning          e14 frequency-boost extension\n\
         e15 MVA validation          e16 mix-sensitivity extension\n\
         e17 enumeration orders      e18 slow-replica tail (faults)\n\
         e19 crash & recovery       e20 overload sweep (admission control)\n\
         e21 retry-storm metastability  e22 brownout / priority shedding\n\
         e23 recovery hysteresis     e24 population scale-up 1k..1M\n\
         e25 trace memory/fidelity   e26 mega-scale overload (100k users)\n\
         e27 warm-started sweeps     e28 shard-count scaling (events/s vs shards)\n\
         e29 chaos sweep: sampled fault plans vs the mitigation grid\n\
         e30 window-policy sync cost: barriers/sim-s & rollbacks vs cross-traffic\n\
         a1..a4 ablations\n\
         --shards N runs every shardable experiment (see `list --json`) with\n\
              N parallel-in-run cells; unshardable experiments ignore it\n\
         perf simulator self-benchmark (writes results/BENCH_simperf.json;\n\
              with --gate, fail if events/s regress vs the committed baseline)\n\
         lint static determinism & invariant pass (simlint; fails on findings)
         snap snapshot/resume identity check (writes results/snapshot_quick.bin)\n\
         chaos fault-space search + shrink (writes results/chaos_report.json)\n\
         list enumerate every experiment (--json for the machine-readable catalog)"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut seed = 42u64;
    let mut shards = 1u32;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut html_path: Option<std::path::PathBuf> = None;
    let mut gate_path: Option<std::path::PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut list_mode = false;
    let mut json = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--jobs" => {
                let jobs: usize = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                scaleup::par::set_jobs(jobs.max(1));
            }
            "--shards" => {
                shards = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--csv" => {
                csv_dir = Some(iter.next().map(Into::into).unwrap_or_else(|| usage()));
            }
            "--gate" => {
                gate_path = Some(iter.next().map(Into::into).unwrap_or_else(|| usage()));
            }
            "--html" => {
                html_path = Some(iter.next().map(Into::into).unwrap_or_else(|| usage()));
            }
            "all" => wanted.extend(ALL.iter().map(|s| s.to_string())),
            "list" => list_mode = true,
            "perf" => wanted.push("perf".to_owned()),
            "lint" => wanted.push("lint".to_owned()),
            "snap" => wanted.push("snap".to_owned()),
            "chaos" => wanted.push("chaos".to_owned()),
            e if ALL.contains(&e) => wanted.push(e.to_owned()),
            _ => usage(),
        }
    }
    if list_mode {
        list(json);
    }
    if wanted.is_empty() {
        usage();
    }
    // --gate without the perf experiment used to parse and then silently do
    // nothing; fail up front instead.
    if let Err(msg) = scaleup_bench::perf::gate_requires_perf(&wanted, gate_path.is_some()) {
        eprintln!("{msg}");
        std::process::exit(2);
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create CSV output directory");
    }

    let mut config = if quick {
        Config::quick(seed)
    } else {
        Config::paper(seed)
    };
    // Thread the shard count through the shared lab: every experiment whose
    // runs route through `Lab::run_app`/`run_app_open` (the catalog's
    // `shardable` entries) picks it up from there.
    config.lab.shards = shards;
    println!(
        "# repro: {} configuration, seed {seed}{}\n",
        if quick { "quick" } else { "paper" },
        if shards > 1 {
            format!(", {shards} shards")
        } else {
            String::new()
        }
    );
    let mut html = html_path.as_ref().map(|_| {
        scaleup::html::HtmlReport::new(&format!(
            "TeaStore scale-up reproduction ({} configuration, seed {seed})",
            if quick { "quick" } else { "paper" }
        ))
    });

    for name in wanted {
        let t0 = Instant::now();
        let mut csv: Option<(String, String)> = None; // (filename, contents)
        let output = match name.as_str() {
            "e1" => exp::e1(&config),
            "e2" => exp::e2(&config),
            "e3" => {
                let r = exp::e3(&config);
                csv = Some(("e3_load_curve.csv".into(), exp::csv_e3(&r)));
                if let Some(report) = html.as_mut() {
                    report.chart(
                        "E3: load curve",
                        scaleup::html::LineChart::new(
                            "throughput vs closed-loop users",
                            "users",
                            "req/s",
                        )
                        .series(
                            "tuned baseline",
                            r.points
                                .iter()
                                .map(|(u, rep)| (*u as f64, rep.throughput_rps))
                                .collect(),
                        ),
                    );
                }
                r.table
            }
            "e4" => {
                let r = exp::e4(&config);
                csv = Some(("e4_scaleup.csv".into(), exp::csv_scale_points(&r.points)));
                if let Some(report) = html.as_mut() {
                    let measured: Vec<(f64, f64)> = r
                        .points
                        .iter()
                        .map(|p| (p.n as f64, p.throughput_rps))
                        .collect();
                    let fitted: Vec<(f64, f64)> = r
                        .points
                        .iter()
                        .map(|p| (p.n as f64, r.fit.predict(p.n as f64)))
                        .collect();
                    report.chart(
                        "E4: scale-up",
                        scaleup::html::LineChart::new(
                            "throughput vs enabled logical CPUs",
                            "logical CPUs",
                            "req/s",
                        )
                        .series("measured", measured)
                        .series("USL fit", fitted),
                    );
                }
                r.table
            }
            "e5" => exp::e5(&config),
            "e6" => {
                let r = exp::e6(&config);
                csv = Some(("e6_service_scaling.csv".into(), exp::csv_e6(&r)));
                if let Some(report) = html.as_mut() {
                    let mut chart = scaleup::html::LineChart::new(
                        "throughput vs replicas of one service",
                        "replicas",
                        "req/s",
                    );
                    for (name, points, _) in &r.services {
                        chart = chart.series(
                            name,
                            points
                                .iter()
                                .map(|p| (p.n as f64, p.throughput_rps))
                                .collect(),
                        );
                    }
                    report.chart("E6: per-service scaling", chart);
                }
                r.table
            }
            "e7" => exp::e7(&config),
            "e8" => {
                let r = exp::e8(&config);
                csv = Some(("e8_placement.csv".into(), exp::csv_e8(&r)));
                if let Some(report) = html.as_mut() {
                    let rows: Vec<Vec<String>> = r
                        .rows
                        .iter()
                        .zip(&r.throughput)
                        .map(|((name, rep), x)| {
                            vec![
                                name.clone(),
                                x.display(" req/s"),
                                rep.mean_latency.to_string(),
                                format!("{:.1}%", rep.cpu_utilization * 100.0),
                                format!("{:+.1}%", 100.0 * (x.mean / r.throughput[0].mean - 1.0)),
                            ]
                        })
                        .collect();
                    report.table(
                        "E8: placement policies (headline)",
                        &[
                            "policy",
                            "throughput",
                            "mean latency",
                            "util",
                            "vs baseline",
                        ],
                        rows,
                    );
                }
                r.table
            }
            "e9" => {
                let r = exp::e9(&config);
                csv = Some(("e9_latency.csv".into(), exp::csv_e9(&r)));
                r.table
            }
            "e10" => exp::e10(&config).table,
            "e11" => exp::e11(&config).table,
            "e12" => exp::e12(&config),
            "e13" => exp::e13(&config),
            "e14" => exp::e14(&config),
            "e16" => exp::e16(&config).table,
            "e17" => exp::e17(&config),
            "e15" => {
                let r = exp::e15(&config);
                csv = Some(("e15_mva.csv".into(), exp::csv_e15(&r)));
                if let Some(report) = html.as_mut() {
                    report.chart(
                        "E15: simulator vs analytic MVA",
                        scaleup::html::LineChart::new(
                            "simulated vs predicted throughput",
                            "users",
                            "req/s",
                        )
                        .series(
                            "simulator",
                            r.points.iter().map(|&(u, s, _)| (u as f64, s)).collect(),
                        )
                        .series(
                            "MVA",
                            r.points.iter().map(|&(u, _, m)| (u as f64, m)).collect(),
                        ),
                    );
                }
                r.table
            }
            "e18" => {
                let r = exp::e18(&config);
                csv = Some(("e18_slow_replica.csv".into(), exp::csv_fault_study(&r)));
                if let Some(report) = html.as_mut() {
                    let rows: Vec<Vec<String>> = r
                        .rows
                        .iter()
                        .map(|(name, rep)| {
                            vec![
                                name.clone(),
                                format!("{:.0}", rep.throughput_rps),
                                rep.mean_latency.to_string(),
                                rep.latency_p99.to_string(),
                                rep.requests_timed_out.to_string(),
                                rep.requests_shed.to_string(),
                            ]
                        })
                        .collect();
                    report.table(
                        "E18: slow-replica tail amplification",
                        &["config", "req/s", "mean", "p99", "timed out", "shed"],
                        rows,
                    );
                }
                r.table
            }
            "e19" => {
                let r = exp::e19(&config);
                csv = Some(("e19_crash_recovery.csv".into(), exp::csv_e19_series(&r)));
                if let Some(report) = html.as_mut() {
                    let mut chart = scaleup::html::LineChart::new(
                        "throughput through a crash/restart of one replica",
                        "seconds since measurement start",
                        "req/s",
                    );
                    for (name, rep) in &r.rows {
                        chart = chart.series(name, rep.throughput_series.clone());
                    }
                    report.chart("E19: crash and recovery", chart);
                }
                r.table
            }
            "e20" => {
                let r = exp::e20(&config);
                csv = Some(("e20_overload_sweep.csv".into(), exp::csv_e20(&r)));
                if let Some(report) = html.as_mut() {
                    let mut goodput = scaleup::html::LineChart::new(
                        "goodput vs offered load (multiple of capacity)",
                        "offered load (× capacity)",
                        "req/s",
                    );
                    let mut p99 = scaleup::html::LineChart::new(
                        "p99 latency vs offered load",
                        "offered load (× capacity)",
                        "p99 µs",
                    );
                    for (name, pick) in [
                        ("unbounded", 0usize),
                        ("admission control", 1usize),
                    ] {
                        let arm = |i: usize, m: &f64, u: &microsvc::RunReport, a: &microsvc::RunReport| {
                            let r = if i == 0 { u } else { a };
                            (*m, r.throughput_rps, r.latency_p99.as_micros_f64())
                        };
                        let pts: Vec<_> = r
                            .rows
                            .iter()
                            .map(|(m, u, a)| arm(pick, m, u, a))
                            .collect();
                        goodput = goodput
                            .series(name, pts.iter().map(|&(m, g, _)| (m, g)).collect());
                        p99 = p99.series(name, pts.iter().map(|&(m, _, p)| (m, p)).collect());
                    }
                    report.chart("E20: overload sweep — goodput", goodput);
                    report.chart("E20: overload sweep — tail latency", p99);
                }
                r.table
            }
            "e21" => {
                let r = exp::e21(&config);
                csv = Some(("e21_metastability.csv".into(), exp::csv_e21_series(&r)));
                if let Some(report) = html.as_mut() {
                    let mut goodput = scaleup::html::LineChart::new(
                        "goodput through the retry storm",
                        "seconds since measurement start",
                        "req/s",
                    );
                    let mut depth = scaleup::html::LineChart::new(
                        "pending-queue depth through the retry storm",
                        "seconds since measurement start",
                        "queued jobs",
                    );
                    for (name, rep) in &r.rows {
                        goodput = goodput.series(name, rep.throughput_series.clone());
                        depth = depth.series(name, rep.queue_depth_series.clone());
                    }
                    report.chart("E21: retry-storm metastability — goodput", goodput);
                    report.chart("E21: retry-storm metastability — queue depth", depth);
                    let rows: Vec<Vec<String>> = r
                        .rows
                        .iter()
                        .map(|(name, rep)| {
                            vec![
                                name.clone(),
                                format!("{:.0}", rep.throughput_rps),
                                rep.requests_timed_out.to_string(),
                                rep.overload.budget_denied.to_string(),
                                rep.overload.total_sheds().to_string(),
                                rep.overload.deferred.to_string(),
                            ]
                        })
                        .collect();
                    report.table(
                        "E21: overload counters",
                        &["config", "goodput", "timed out", "budget-denied", "shed", "deferred"],
                        rows,
                    );
                }
                r.table
            }
            "e22" => {
                let r = exp::e22(&config);
                csv = Some(("e22_brownout.csv".into(), exp::csv_e22(&r)));
                if let Some(report) = html.as_mut() {
                    let mut chart = scaleup::html::LineChart::new(
                        "per-class goodput under 1.6× overload (priority shedding)",
                        "seconds since measurement start",
                        "req/s",
                    );
                    let (arm, rep) = &r.rows[1];
                    for (class, series) in &rep.per_class_series {
                        chart = chart.series(&format!("{arm}: {class}"), series.clone());
                    }
                    report.chart("E22: brownout — per-class goodput", chart);
                    let rows: Vec<Vec<String>> = r
                        .class_goodput
                        .iter()
                        .flat_map(|(arm, classes)| {
                            classes.iter().map(move |(class, submitted, failed, goodput)| {
                                vec![
                                    arm.clone(),
                                    class.clone(),
                                    submitted.to_string(),
                                    failed.to_string(),
                                    format!("{:.1}%", goodput * 100.0),
                                ]
                            })
                        })
                        .collect();
                    report.table(
                        "E22: per-class goodput",
                        &["config", "class", "submitted", "shed", "goodput"],
                        rows,
                    );
                }
                r.table
            }
            "e23" => {
                let r = exp::e23(&config);
                csv = Some(("e23_recovery.csv".into(), exp::csv_e23(&r)));
                if let Some(report) = html.as_mut() {
                    let mut goodput = scaleup::html::LineChart::new(
                        "goodput through a 1s slowdown burst",
                        "seconds since measurement start",
                        "req/s",
                    );
                    let mut depth = scaleup::html::LineChart::new(
                        "pending-queue depth through the burst",
                        "seconds since measurement start",
                        "queued jobs",
                    );
                    for (name, rep, _) in &r.rows {
                        goodput = goodput.series(name, rep.throughput_series.clone());
                        depth = depth.series(name, rep.queue_depth_series.clone());
                    }
                    report.chart("E23: recovery hysteresis — goodput", goodput);
                    report.chart("E23: recovery hysteresis — queue depth", depth);
                }
                r.table
            }
            "e24" => {
                let r = exp::e24(&config);
                csv = Some(("e24_population_scaleup.csv".into(), exp::csv_e24(&r)));
                if let Some(report) = html.as_mut() {
                    report.chart(
                        "E24: population scale-up — per-user memory",
                        scaleup::html::LineChart::new(
                            "engine + generator bytes per closed-loop user",
                            "users",
                            "B/user",
                        )
                        .series(
                            "bytes/user",
                            r.rows
                                .iter()
                                .map(|p| (p.users as f64, p.bytes_per_user))
                                .collect(),
                        ),
                    );
                    report.chart(
                        "E24: population scale-up — simulator speed",
                        scaleup::html::LineChart::new(
                            "calendar events per host wall-clock second",
                            "users",
                            "events/s",
                        )
                        .series(
                            "events/s",
                            r.rows
                                .iter()
                                .map(|p| (p.users as f64, p.events_per_sec))
                                .collect(),
                        ),
                    );
                }
                r.table
            }
            "e25" => {
                let r = exp::e25(&config);
                csv = Some(("e25_trace_fidelity.csv".into(), exp::csv_e25(&r)));
                r.table
            }
            "e26" => {
                let r = exp::e26(&config);
                csv = Some(("e26_mega_overload.csv".into(), exp::csv_e26(&r)));
                if let Some(report) = html.as_mut() {
                    let mut p99 = scaleup::html::LineChart::new(
                        "p99 latency vs offered load (100k closed-loop users)",
                        "offered load (× capacity)",
                        "p99 µs",
                    );
                    for (name, pick) in [("unbounded", 0usize), ("admission control", 1usize)] {
                        p99 = p99.series(
                            name,
                            r.rows
                                .iter()
                                .map(|(m, u, a)| {
                                    let rep = if pick == 0 { u } else { a };
                                    (*m, rep.latency_p99.as_micros_f64())
                                })
                                .collect(),
                        );
                    }
                    report.chart("E26: mega-scale overload — tail latency", p99);
                }
                r.table
            }
            "e27" => {
                let r = exp::e27(&config);
                csv = Some(("e27_warm_start.csv".into(), exp::csv_e27(&r)));
                if !r.identical {
                    eprintln!("{}", r.table);
                    eprintln!("e27 FAILED: warm-started grid diverged from the cold run");
                    std::process::exit(1);
                }
                r.table
            }
            "e28" => {
                let r = exp::e28(&config);
                csv = Some(("e28_shard_scaling.csv".into(), exp::csv_e28(&r)));
                if let Some(report) = html.as_mut() {
                    let mut eps = scaleup::html::LineChart::new(
                        "event rate vs shard count",
                        "shards",
                        "events/s",
                    );
                    let mut speedup = scaleup::html::LineChart::new(
                        "speedup over the 1-shard arm vs shard count",
                        "shards",
                        "speedup",
                    );
                    let populations: Vec<u64> = {
                        let mut v: Vec<u64> = r.rows.iter().map(|p| p.users).collect();
                        v.dedup();
                        v
                    };
                    for users in populations {
                        let pts: Vec<&exp::ShardScalePoint> =
                            r.rows.iter().filter(|p| p.users == users).collect();
                        eps = eps.series(
                            &format!("{users} users"),
                            pts.iter()
                                .map(|p| (f64::from(p.shards), p.events_per_sec))
                                .collect(),
                        );
                        speedup = speedup.series(
                            &format!("{users} users"),
                            pts.iter()
                                .map(|p| (f64::from(p.shards), p.speedup))
                                .collect(),
                        );
                    }
                    report.chart("E28: shard-count scaling — event rate", eps);
                    report.chart("E28: shard-count scaling — speedup", speedup);
                }
                r.table
            }
            "e29" => {
                let r = exp::e29(&config);
                csv = Some(("e29_chaos_sweep.csv".into(), exp::csv_e29(&r)));
                r.table
            }
            "e30" => {
                let r = exp::e30(&config);
                csv = Some(("e30_window_policies.csv".into(), exp::csv_e30(&r)));
                if let Some(report) = html.as_mut() {
                    let mut barriers = scaleup::html::LineChart::new(
                        "barrier crossings per simulated second vs cross-traffic rate",
                        "cross-cell traffic (permille)",
                        "barriers/sim-s",
                    );
                    for policy in ["conservative", "adaptive", "speculative"] {
                        barriers = barriers.series(
                            policy,
                            r.rows
                                .iter()
                                .filter(|p| p.policy == policy)
                                .map(|p| (f64::from(p.cross_permille), p.barriers_per_sim_sec))
                                .collect(),
                        );
                    }
                    report.chart("E30: window-policy sync cost", barriers);
                }
                if !r.identical {
                    eprintln!("{}", r.table);
                    eprintln!("e30 FAILED: window policies produced diverging reports");
                    std::process::exit(1);
                }
                r.table
            }
            "chaos" => {
                let r = exp::chaos_search(&config);
                std::fs::create_dir_all("results").expect("create results directory");
                std::fs::write("results/chaos_report.json", r.report.to_json())
                    .expect("write results/chaos_report.json");
                println!("[wrote results/chaos_report.json]");
                r.table
            }
            "snap" => match exp::snap_check(&config) {
                Ok((table, bytes)) => {
                    std::fs::create_dir_all("results").expect("create results directory");
                    std::fs::write("results/snapshot_quick.bin", &bytes)
                        .expect("write results/snapshot_quick.bin");
                    println!("[wrote results/snapshot_quick.bin]");
                    table
                }
                Err(msg) => {
                    eprintln!("{msg}");
                    std::process::exit(1);
                }
            },
            "a1" => exp::ablate_objective(&config),
            "a2" => exp::ablate_lb(&config),
            "a3" => exp::ablate_balance(&config),
            "a4" => exp::ablate_quantum(&config),
            "perf" => {
                // Read the committed baseline before the fresh results
                // overwrite it (the gate file is usually the same path).
                let committed = gate_path.as_ref().map(|p| {
                    scaleup_bench::perf::read_baseline(p).unwrap_or_else(|msg| {
                        eprintln!("{msg}\nperf gate FAILED");
                        std::process::exit(1);
                    })
                });
                let (table, json) = scaleup_bench::perf::run(quick);
                std::fs::create_dir_all("results").expect("create results directory");
                std::fs::write("results/BENCH_simperf.json", &json)
                    .expect("write results/BENCH_simperf.json");
                println!("[wrote results/BENCH_simperf.json]");
                if let Some(committed) = committed {
                    match scaleup_bench::perf::gate(&committed, &json, 0.5) {
                        Ok(report) => println!("{report}"),
                        Err(report) => {
                            eprintln!("{report}perf gate FAILED");
                            std::process::exit(1);
                        }
                    }
                }
                table
            }
            "lint" => {
                // Static determinism & invariant pass (see DESIGN.md
                // "Static analysis"). Same engine as `cargo run -p simlint`
                // and the tier-1 gate in tests/simlint.rs.
                let root = simlint::find_root(
                    &std::env::current_dir().expect("current directory"),
                );
                let report = simlint::lint_workspace(&root);
                if report.gating_count() > 0 || !report.stale_baseline.is_empty() {
                    eprint!("{}", simlint::render_text(&report));
                    eprintln!("repro lint FAILED");
                    std::process::exit(1);
                }
                simlint::render_text(&report)
            }
            _ => unreachable!("validated above"),
        };
        println!("{output}");
        if let Some(report) = html.as_mut() {
            report.pre(&format!("{name} (text table)"), output.trim_end());
        }
        if let (Some(dir), Some((file, contents))) = (&csv_dir, csv) {
            let path = dir.join(file);
            std::fs::write(&path, contents).expect("write CSV");
            println!("[wrote {}]", path.display());
        }
        println!("[{name} took {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
    if let (Some(path), Some(report)) = (html_path, html) {
        std::fs::write(&path, report.render()).expect("write HTML report");
        println!("[wrote {}]", path.display());
    }
}
