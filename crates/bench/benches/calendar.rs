//! Calendar microbenchmarks: schedule/pop/cancel cost of the timer wheel
//! at small, medium, and huge pending-event populations, plus one
//! steady-state engine second as the macro reference point.
//!
//! The population sizes bracket the regimes the wheel has to be good at:
//! 1e3 (a quick-config sweep point), 1e5 (the paper configuration), and
//! 1e7 (stress — most events live in the overflow heap and migrate down).

use criterion::{criterion_group, criterion_main, Criterion};
use loadgen::ClosedLoop;
use microsvc::{Deployment, Engine, EngineParams};
use simcore::{Calendar, SimDuration, SimTime};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use teastore::TeaStore;

/// A calendar holding `n` pending events spread over one simulated hour,
/// advanced past warm-up so the wheel cursors are in steady state.
fn prefilled(n: u64) -> Calendar<u64> {
    let mut cal = Calendar::new();
    // Deterministic low-discrepancy spread: i * golden-ratio step mod 1h.
    let hour_us: u64 = 3_600_000_000;
    for i in 0..n {
        let at = (i.wrapping_mul(2_654_435_769)) % hour_us;
        cal.schedule(SimTime::from_micros(at + 1), i);
    }
    // Retire a small prefix so `now` sits mid-wheel, not at zero.
    for _ in 0..n.min(128) {
        cal.pop();
    }
    cal
}

fn bench_calendar(c: &mut Criterion) {
    let mut group = c.benchmark_group("calendar");
    group.sample_size(20);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(4));

    for &n in &[1_000u64, 100_000, 10_000_000] {
        let name = format!("push_pop_{n}");
        group.bench_function(&name, |b| {
            let mut cal = prefilled(n);
            b.iter(|| {
                // 64 near-future schedules then 64 pops: steady population,
                // so every iteration sees the same wheel occupancy.
                let now = cal.now();
                for i in 0..64u64 {
                    cal.schedule(now + SimDuration::from_micros(1 + i * 7), i);
                }
                for _ in 0..64 {
                    black_box(cal.pop());
                }
            })
        });

        let name = format!("cancel_{n}");
        group.bench_function(&name, |b| {
            let mut cal = prefilled(n);
            b.iter(|| {
                // Schedule 64, cancel half by token, pop the rest — the mix
                // the engine produces (timeout timers mostly cancelled, a
                // tail actually firing), so tombstone recycling is on the
                // measured path.
                let now = cal.now();
                let tokens: Vec<_> = (0..64u64)
                    .map(|i| cal.schedule(now + SimDuration::from_micros(1 + i * 7), i))
                    .collect();
                for t in tokens.iter().skip(32) {
                    black_box(cal.cancel(*t));
                }
                for _ in 0..32 {
                    black_box(cal.pop());
                }
            })
        });
    }

    group.finish();
}

/// One simulated steady-state second of the full TeaStore engine on the
/// desktop topology — the macro number the micro-ops above must explain.
fn bench_engine_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("calendar_macro");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(2));
    group.measurement_time(Duration::from_secs(8));

    group.bench_function("engine_steady_second", |b| {
        let topo = Arc::new(cputopo::Topology::desktop_8c());
        b.iter(|| {
            let store = TeaStore::browse();
            let mix = store.mix();
            let app = store.into_app();
            let deployment = Deployment::uniform(&app, &topo, 4, 12);
            let mut engine = Engine::new(topo.clone(), EngineParams::default(), app, deployment, 1);
            let mut load = ClosedLoop::new(64)
                .think_time(SimDuration::from_millis(10))
                .mix(&mix)
                .warmup(SimDuration::from_millis(200))
                .measure(SimDuration::from_millis(1000));
            engine.run(&mut load, SimTime::from_secs(60));
            black_box(engine.report().completed)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_calendar, bench_engine_second);
criterion_main!(benches);
