//! Engine micro/macro benchmarks: how fast the simulator itself runs.
//!
//! These measure simulator wall-clock cost (events processed per wall
//! second), not simulated-system performance — useful for keeping sweeps
//! affordable as the engine evolves.

use criterion::{criterion_group, criterion_main, Criterion};
use loadgen::ClosedLoop;
use microsvc::{Deployment, Engine, EngineParams};
use simcore::{SimDuration, SimTime};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use teastore::TeaStore;

fn run_teastore(topo: Arc<cputopo::Topology>, users: u64, measure_ms: u64, seed: u64) -> u64 {
    let store = TeaStore::browse();
    let mix = store.mix();
    let app = store.into_app();
    let deployment = Deployment::uniform(&app, &topo, 4, 12);
    let mut engine = Engine::new(topo, EngineParams::default(), app, deployment, seed);
    let mut load = ClosedLoop::new(users)
        .think_time(SimDuration::from_millis(10))
        .mix(&mix)
        .warmup(SimDuration::from_millis(200))
        .measure(SimDuration::from_millis(measure_ms));
    engine.run(&mut load, SimTime::from_secs(60));
    engine.report().completed
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(2));
    group.measurement_time(Duration::from_secs(8));

    group.bench_function("teastore_desktop_64u_300ms", |b| {
        let topo = Arc::new(cputopo::Topology::desktop_8c());
        b.iter(|| black_box(run_teastore(topo.clone(), 64, 300, 1)))
    });

    group.bench_function("teastore_2p256_512u_300ms", |b| {
        let topo = Arc::new(cputopo::Topology::zen2_2p_128c());
        b.iter(|| black_box(run_teastore(topo.clone(), 512, 300, 1)))
    });

    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
