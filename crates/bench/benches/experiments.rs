//! One Criterion target per reproduced table/figure (quick configuration).
//!
//! `cargo bench -p scaleup-bench --bench experiments` regenerates every
//! experiment's data on the quick machine and reports how long each takes;
//! the printed tables of the full study come from the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use scaleup_bench::experiments as exp;
use scaleup_bench::Config;
use std::hint::black_box;
use std::time::Duration;

fn bench_experiments(c: &mut Criterion) {
    let config = Config::quick(42);
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(2));
    group.measurement_time(Duration::from_secs(8));

    group.bench_function("e3_load_curve", |b| {
        b.iter(|| black_box(exp::e3(&config).points.len()))
    });
    group.bench_function("e4_scaleup", |b| {
        b.iter(|| black_box(exp::e4(&config).fit.lambda))
    });
    group.bench_function("e5_service_util", |b| {
        b.iter(|| black_box(exp::e5(&config).len()))
    });
    group.bench_function("e6_usl", |b| {
        b.iter(|| black_box(exp::e6(&config).services.len()))
    });
    group.bench_function("e8_placement", |b| {
        b.iter(|| black_box(exp::e8(&config).uplift_pct))
    });
    group.bench_function("e9_latency", |b| {
        b.iter(|| black_box(exp::e9(&config).mean_reduction_pct))
    });
    group.bench_function("e10_smt", |b| {
        b.iter(|| black_box(exp::e10(&config).smt2_rps))
    });
    group.bench_function("e12_characterization", |b| {
        b.iter(|| black_box(exp::e12(&config).len()))
    });

    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
