//! Ablation benches for the design choices called out in DESIGN.md:
//! packing objective, LB policy, steal scope, and scheduler quantum.

use criterion::{criterion_group, criterion_main, Criterion};
use scaleup_bench::experiments as exp;
use scaleup_bench::Config;
use std::hint::black_box;
use std::time::Duration;

fn bench_ablations(c: &mut Criterion) {
    let config = Config::quick(42);
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(2));
    group.measurement_time(Duration::from_secs(8));

    group.bench_function("ablate_objective", |b| {
        b.iter(|| black_box(exp::ablate_objective(&config).len()))
    });
    group.bench_function("ablate_lb", |b| {
        b.iter(|| black_box(exp::ablate_lb(&config).len()))
    });
    group.bench_function("ablate_balance", |b| {
        b.iter(|| black_box(exp::ablate_balance(&config).len()))
    });
    group.bench_function("ablate_quantum", |b| {
        b.iter(|| black_box(exp::ablate_quantum(&config).len()))
    });

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
