//! Mega-scale microbenchmarks: the per-user cost of the load generator's
//! arrival/think cycle at 1e4, 1e5, and 1e6 users, and `LogHistogram`
//! record/quantile throughput at 1e7 samples.
//!
//! The closed-loop benches drive `ClosedLoop` against a mock engine context
//! (a bare timer wheel plus the driver RNG) so the measured path is exactly
//! the generator's own work — RNG draws, class mix sampling, wake-bucket
//! park/release — with no service-model noise. Exact mode is benched at
//! 1e4; the coalesced SoA mode carries the 1e5 and 1e6 populations, which
//! is how `repro perf`'s mega scenario runs them.

use criterion::{criterion_group, criterion_main, Criterion};
use loadgen::ClosedLoop;
use microsvc::{
    ClientId, Driver, EngineCtx, Outcome, RequestClassId, RequestId, ResponseInfo,
};
use simcore::stats::LogHistogram;
use simcore::{Calendar, Rng, RngFactory, SimDuration, SimTime};
use std::hint::black_box;
use std::time::Duration;

/// A minimal engine context: a real timer wheel, a real driver RNG, and a
/// submit that just queues the client id for an immediate response.
struct MockCtx {
    cal: Calendar<u64>,
    rng: Rng,
    pending: Vec<u64>,
    submitted: u64,
}

impl MockCtx {
    fn new(seed: u64) -> Self {
        MockCtx {
            cal: Calendar::new(),
            rng: RngFactory::new(seed).stream("driver"),
            pending: Vec::new(),
            submitted: 0,
        }
    }
}

impl EngineCtx for MockCtx {
    fn now(&self) -> SimTime {
        self.cal.now()
    }

    fn set_timer(&mut self, after: SimDuration, token: u64) {
        self.cal.schedule(self.cal.now() + after, token);
    }

    fn submit(&mut self, _class: u32, client: u64) -> RequestId {
        self.pending.push(client);
        self.submitted += 1;
        RequestId(self.submitted)
    }

    fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    fn reset_metrics(&mut self) {}

    fn request_stop(&mut self) {}

    fn completed_requests(&self) -> u64 {
        self.submitted
    }
}

/// Runs `cycles` timer firings of the think loop: every submitted request
/// is answered instantly, so each cycle is submit → response → think-park.
fn drive_cycles(load: &mut ClosedLoop, ctx: &mut MockCtx, cycles: u64) -> u64 {
    let mut fired = 0;
    while fired < cycles {
        let Some((_, token)) = ctx.cal.pop() else {
            break;
        };
        load.on_timer(token, ctx);
        fired += 1;
        while let Some(client) = ctx.pending.pop() {
            let resp = ResponseInfo {
                request: RequestId(ctx.submitted),
                client: ClientId(client),
                class: RequestClassId(0),
                latency: SimDuration::from_micros(500),
                outcome: Outcome::Ok,
            };
            load.on_response(resp, ctx);
        }
    }
    load.issued()
}

fn bench_closed_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("megascale_closed_loop");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));

    for &(users, coalesce_ms) in &[(10_000u64, 0u64), (100_000, 5), (1_000_000, 5)] {
        let mode = if coalesce_ms > 0 { "coalesced" } else { "exact" };
        let name = format!("think_cycle_{users}u_{mode}");
        group.bench_function(&name, |b| {
            b.iter(|| {
                let mut ctx = MockCtx::new(42);
                let mut load = ClosedLoop::new(users)
                    .think_time(SimDuration::from_millis(1000))
                    .warmup(SimDuration::from_secs(3600));
                if coalesce_ms > 0 {
                    load = load.coalesce(SimDuration::from_millis(coalesce_ms));
                }
                load.start(&mut ctx);
                // One stagger wave plus one full think cycle per user.
                black_box(drive_cycles(&mut load, &mut ctx, users * 2))
            })
        });
    }

    group.finish();
}

fn bench_log_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("megascale_histogram");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));

    const SAMPLES: u64 = 10_000_000;

    group.bench_function("record_1e7", |b| {
        b.iter(|| {
            let mut h = LogHistogram::new();
            let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
            for _ in 0..SAMPLES {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                h.record(x >> 40);
            }
            black_box(h.count())
        })
    });

    group.bench_function("quantile_after_1e7", |b| {
        let mut h = LogHistogram::new();
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for _ in 0..SAMPLES {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            h.record(x >> 40);
        }
        b.iter(|| {
            for &q in &[0.5, 0.9, 0.95, 0.99, 0.999] {
                black_box(h.quantile(q));
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_closed_loop, bench_log_histogram);
criterion_main!(benches);
