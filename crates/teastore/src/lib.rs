//! A model of **TeaStore**, the reference microservice application the paper
//! characterizes (von Kistowski et al., ICPE'18).
//!
//! TeaStore is an online tea shop decomposed into six services:
//!
//! | Service | Role | Profile |
//! |---|---|---|
//! | WebUI | servlet frontend, renders JSPs | web frontend |
//! | Auth | session validation, BCrypt login | light RPC |
//! | Persistence | ORM over the store database | data tier |
//! | Recommender | in-memory collaborative filtering | in-memory analytics |
//! | ImageProvider | product image scaling + cache | media |
//! | Registry | service discovery (startup/heartbeat only) | light RPC |
//!
//! plus a MySQL database, modeled here as a seventh service (`store-db`)
//! because it competes for the same CPUs in single-server scale-up runs.
//!
//! [`TeaStore`] builds the [`microsvc::AppSpec`] with the six
//! request classes of the *browse profile* (the mix the paper drives):
//! home, login, category browsing, product views, add-to-cart, and checkout.
//! CPU demands are calibrated from published TeaStore measurements (a full
//! page load costs a few ms of CPU spread over 3–7 service invocations; the
//! WebUI dominates) — see [`demands`] for the numbers and their derivation.
//!
//! The Registry is deliberately *not* on the request path: TeaStore resolves
//! instances through client-side caches refreshed out of band. It is still
//! deployed (it occupies a little memory and an occasional heartbeat), which
//! we model as a service with no request-class traffic.
//!
//! # Example
//!
//! ```
//! use teastore::TeaStore;
//!
//! let store = TeaStore::browse();
//! assert_eq!(store.app().services().len(), 7);
//! assert_eq!(store.app().classes().len(), 6);
//! // The WebUI is the demand bottleneck, as the paper reports.
//! let demand = store.app().mean_demand_per_service_us();
//! let webui = demand[store.services().webui.index()];
//! assert!(demand.iter().all(|&d| d <= webui));
//! ```

pub mod catalog;
pub mod demands;

use microsvc::{AppSpec, CallNode, CallStage, Demand, RequestClassId, ServiceId, ServiceSpec};
use serde::{Deserialize, Serialize};
use uarch::ServiceProfile;

/// The request-mix profiles the load driver can replay.
///
/// The paper drives the *browse* profile; the others exist for sensitivity
/// studies (checkout-heavy sale events, authentication storms) and shift the
/// bottleneck between services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MixProfile {
    /// The standard browsing session mix (the paper's workload).
    #[default]
    Browse,
    /// A sale event: more carts and checkouts, fewer idle views.
    BuyHeavy,
    /// A login storm: BCrypt-heavy authentication dominates.
    LoginStorm,
}

impl MixProfile {
    /// Class weights in the order (home, login, category, product,
    /// add-to-cart, buy); each sums to 1.
    pub fn weights(self) -> [f64; 6] {
        match self {
            MixProfile::Browse => [0.10, 0.05, 0.30, 0.35, 0.15, 0.05],
            MixProfile::BuyHeavy => [0.08, 0.07, 0.20, 0.30, 0.20, 0.15],
            MixProfile::LoginStorm => [0.15, 0.40, 0.15, 0.15, 0.10, 0.05],
        }
    }
}

/// Ids of the seven deployed services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Services {
    /// The servlet frontend.
    pub webui: ServiceId,
    /// Session/credential checks.
    pub auth: ServiceId,
    /// The ORM tier.
    pub persistence: ServiceId,
    /// The recommender.
    pub recommender: ServiceId,
    /// The image provider.
    pub image: ServiceId,
    /// Service discovery (off the hot path).
    pub registry: ServiceId,
    /// The MySQL stand-in.
    pub db: ServiceId,
}

/// Ids of the six browse-profile request classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Classes {
    /// The landing page.
    pub home: RequestClassId,
    /// Login with BCrypt verification.
    pub login: RequestClassId,
    /// A category listing page.
    pub category: RequestClassId,
    /// A product detail page (with recommendations).
    pub product: RequestClassId,
    /// Adding an item to the cart.
    pub add_to_cart: RequestClassId,
    /// Order checkout.
    pub buy: RequestClassId,
}

/// The TeaStore application model.
#[derive(Debug, Clone)]
pub struct TeaStore {
    app: AppSpec,
    services: Services,
    classes: Classes,
}

impl TeaStore {
    /// Builds TeaStore with the browse-profile mix and calibrated demands.
    pub fn browse() -> Self {
        Self::with_options(MixProfile::Browse, 1.0)
    }

    /// Like [`TeaStore::browse`], with every CPU demand multiplied by
    /// `scale`. Useful for sensitivity studies and fast tests.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive.
    pub fn with_demand_scale(scale: f64) -> Self {
        Self::with_options(MixProfile::Browse, scale)
    }

    /// Builds TeaStore with an alternative request mix.
    pub fn with_mix(mix: MixProfile) -> Self {
        Self::with_options(mix, 1.0)
    }

    /// Builds TeaStore with full control of mix and demand scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive.
    pub fn with_options(mix: MixProfile, scale: f64) -> Self {
        assert!(scale > 0.0, "demand scale must be positive");
        Self::with_demand_table(mix, demands::DemandTable::scaled(scale))
    }

    /// Builds TeaStore from an explicit demand table — e.g. one whose store
    /// queries were derived from a generated catalog
    /// ([`demands::DemandTable::with_catalog_queries`]).
    pub fn with_demand_table(mix: MixProfile, d: demands::DemandTable) -> Self {
        let mut app = AppSpec::new();
        let services = Services {
            webui: app.add_service(
                ServiceSpec::new("webui", ServiceProfile::web_frontend("webui")).with_threads(16),
            ),
            auth: app.add_service(
                ServiceSpec::new("auth", ServiceProfile::light_rpc("auth")).with_threads(8),
            ),
            persistence: app.add_service(
                ServiceSpec::new("persistence", ServiceProfile::data_tier("persistence"))
                    .with_threads(12),
            ),
            recommender: app.add_service(
                ServiceSpec::new(
                    "recommender",
                    ServiceProfile::in_memory_analytics("recommender"),
                )
                .with_threads(8),
            ),
            image: app.add_service(
                ServiceSpec::new("image", ServiceProfile::media("image")).with_threads(8),
            ),
            registry: app.add_service(
                ServiceSpec::new("registry", ServiceProfile::light_rpc("registry")).with_threads(2),
            ),
            db: app.add_service(
                ServiceSpec::new("store-db", ServiceProfile::database("store-db")).with_threads(12),
            ),
        };
        let s = services;

        // Helper constructors for the recurring sub-trees.
        let auth_check = || CallNode::leaf(s.auth, d.auth_check);
        let persistence_q = |orm: Demand, query: Demand| {
            CallNode::new(
                s.persistence,
                orm,
                vec![CallStage {
                    parallel: vec![CallNode::leaf(s.db, query)],
                }],
                Demand::ZERO,
            )
        };
        let recommend = || {
            CallNode::new(
                s.recommender,
                d.recommend,
                vec![CallStage {
                    parallel: vec![persistence_q(d.orm_light, d.query_light)],
                }],
                Demand::ZERO,
            )
        };

        let home = CallNode::new(
            s.webui,
            d.webui_home,
            vec![CallStage {
                parallel: vec![
                    auth_check(),
                    persistence_q(d.orm_categories, d.query_light),
                    CallNode::leaf(s.image, d.image_banner),
                ],
            }],
            d.webui_render,
        );

        let login = CallNode::new(
            s.webui,
            d.webui_light,
            vec![CallStage {
                parallel: vec![CallNode::new(
                    s.auth,
                    d.auth_login,
                    vec![CallStage {
                        parallel: vec![persistence_q(d.orm_light, d.query_light)],
                    }],
                    Demand::ZERO,
                )],
            }],
            d.webui_render_light,
        );

        let category = CallNode::new(
            s.webui,
            d.webui_category,
            vec![CallStage {
                parallel: vec![
                    auth_check(),
                    persistence_q(d.orm_products, d.query_products),
                    CallNode::leaf(s.image, d.image_previews),
                ],
            }],
            d.webui_render,
        );

        let product = CallNode::new(
            s.webui,
            d.webui_product,
            vec![
                CallStage {
                    parallel: vec![
                        auth_check(),
                        persistence_q(d.orm_product, d.query_light),
                        CallNode::leaf(s.image, d.image_full),
                    ],
                },
                CallStage {
                    parallel: vec![recommend()],
                },
            ],
            d.webui_render,
        );

        let add_to_cart = CallNode::new(
            s.webui,
            d.webui_cart,
            vec![CallStage {
                parallel: vec![CallNode::leaf(s.auth, d.auth_cart), recommend()],
            }],
            d.webui_render_light,
        );

        let buy = CallNode::new(
            s.webui,
            d.webui_buy,
            vec![CallStage {
                parallel: vec![
                    CallNode::leaf(s.auth, d.auth_cart),
                    persistence_q(d.orm_order, d.query_order),
                ],
            }],
            d.webui_render_light,
        );

        // Mix weights (fractions of the request stream).
        let w = mix.weights();
        let classes = Classes {
            home: app.add_class("home", w[0], home),
            login: app.add_class("login", w[1], login),
            category: app.add_class("category", w[2], category),
            product: app.add_class("product", w[3], product),
            add_to_cart: app.add_class("add-to-cart", w[4], add_to_cart),
            buy: app.add_class("buy", w[5], buy),
        };

        TeaStore {
            app,
            services,
            classes,
        }
    }

    /// The application specification (services + request classes).
    pub fn app(&self) -> &AppSpec {
        &self.app
    }

    /// Consumes the model, yielding the [`AppSpec`].
    pub fn into_app(self) -> AppSpec {
        self.app
    }

    /// Service ids.
    pub fn services(&self) -> Services {
        self.services
    }

    /// Request-class ids.
    pub fn classes(&self) -> Classes {
        self.classes
    }

    /// The request-mix weights in class order (sums to 1).
    pub fn mix(&self) -> Vec<f64> {
        self.app.classes().iter().map(|c| c.weight).collect()
    }

    /// A human-readable table of services, profiles, and per-request demand
    /// (experiment E2).
    pub fn service_table(&self) -> String {
        let per = self.app.mean_demand_per_service_us();
        let mut out =
            String::from("service        profile-IPC  ws(MiB)  threads  mean CPU µs/request\n");
        for (i, spec) in self.app.services().iter().enumerate() {
            out.push_str(&format!(
                "{:<14} {:>10.2}  {:>7.1}  {:>7}  {:>19.1}\n",
                spec.name,
                spec.profile.base_ipc,
                spec.profile.working_set_bytes as f64 / (1 << 20) as f64,
                spec.default_threads,
                per[i],
            ));
        }
        out
    }
}

impl Default for TeaStore {
    fn default() -> Self {
        Self::browse()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_seven_services_six_classes() {
        let store = TeaStore::browse();
        assert_eq!(store.app().services().len(), 7);
        assert_eq!(store.app().classes().len(), 6);
        assert_eq!(
            store.app().service_by_name("webui"),
            Some(store.services().webui)
        );
        assert_eq!(
            store.app().service_by_name("store-db"),
            Some(store.services().db)
        );
    }

    #[test]
    fn mix_sums_to_one() {
        let mix = TeaStore::browse().mix();
        let total: f64 = mix.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mix sums to {total}");
        assert_eq!(mix.len(), 6);
    }

    #[test]
    fn webui_is_the_demand_bottleneck() {
        let store = TeaStore::browse();
        let per = store.app().mean_demand_per_service_us();
        let webui = per[store.services().webui.index()];
        for (i, &d) in per.iter().enumerate() {
            if i != store.services().webui.index() {
                assert!(d < webui, "service {i} demand {d} exceeds webui {webui}");
            }
        }
    }

    #[test]
    fn registry_gets_no_request_traffic() {
        let store = TeaStore::browse();
        let per = store.app().mean_demand_per_service_us();
        assert_eq!(per[store.services().registry.index()], 0.0);
    }

    #[test]
    fn total_request_demand_is_a_few_ms() {
        let store = TeaStore::browse();
        let total: f64 = store.app().mean_demand_per_service_us().iter().sum();
        assert!(
            (2_000.0..12_000.0).contains(&total),
            "mean demand per request = {total} µs"
        );
    }

    #[test]
    fn demand_scale_scales_linearly() {
        let base: f64 = TeaStore::browse()
            .app()
            .mean_demand_per_service_us()
            .iter()
            .sum();
        let half: f64 = TeaStore::with_demand_scale(0.5)
            .app()
            .mean_demand_per_service_us()
            .iter()
            .sum();
        assert!((half * 2.0 - base).abs() / base < 1e-9);
    }

    #[test]
    fn product_class_reaches_recommender() {
        let store = TeaStore::browse();
        let class = &store.app().classes()[store.classes().product.index()];
        let mut per = vec![0.0; store.app().services().len()];
        class.root.demand_by_service(&mut per);
        assert!(per[store.services().recommender.index()] > 0.0);
        assert!(per[store.services().db.index()] > 0.0);
    }

    #[test]
    fn service_table_renders() {
        let table = TeaStore::browse().service_table();
        assert!(table.contains("webui"));
        assert!(table.contains("recommender"));
        assert!(table.lines().count() >= 8);
    }

    #[test]
    #[should_panic(expected = "demand scale must be positive")]
    fn zero_scale_rejected() {
        TeaStore::with_demand_scale(0.0);
    }

    #[test]
    fn all_mixes_sum_to_one() {
        for mix in [
            MixProfile::Browse,
            MixProfile::BuyHeavy,
            MixProfile::LoginStorm,
        ] {
            let total: f64 = mix.weights().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{mix:?} sums to {total}");
        }
    }

    #[test]
    fn login_storm_shifts_the_bottleneck_toward_auth() {
        let browse = TeaStore::browse();
        let storm = TeaStore::with_mix(MixProfile::LoginStorm);
        let auth = browse.services().auth.index();
        let b = browse.app().mean_demand_per_service_us()[auth];
        let s = storm.app().mean_demand_per_service_us()[auth];
        assert!(
            s > 3.0 * b,
            "auth demand must surge under a login storm: {b} → {s}"
        );
    }

    #[test]
    fn buy_heavy_mix_is_applied_to_classes() {
        let sale = TeaStore::with_mix(MixProfile::BuyHeavy);
        let weights: Vec<f64> = sale.mix();
        assert_eq!(weights, MixProfile::BuyHeavy.weights().to_vec());
        // Checkout traffic triples relative to the browse profile.
        let buy_browse = MixProfile::Browse.weights()[5];
        let buy_sale = MixProfile::BuyHeavy.weights()[5];
        assert!(buy_sale >= 2.9 * buy_browse);
    }
}
