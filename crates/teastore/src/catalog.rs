//! The TeaStore dataset, hosted in the [`storedb`] substrate.
//!
//! TeaStore ships a generated catalog (categories, products, users, orders)
//! in MySQL. This module reproduces it: [`Catalog::generate`] populates an
//! embedded [`Database`] with a deterministic dataset, and the representative
//! store operations (`op_*`) execute *real* indexed queries whose
//! [`OpStats`] expose their logical cost.
//!
//! [`derived_query_demands`](Catalog::derived_query_demands) converts those
//! costs into CPU demands through a [`CostModel`], giving a *data-derived*
//! alternative to the hand-calibrated demand table: grow the catalog and the
//! category-page query gets more expensive, exactly as it would against
//! MySQL.

use simcore::Rng;
use storedb::{Database, OpStats, Schema, Value};

/// The generated TeaStore dataset plus its query workload.
#[derive(Debug, Clone)]
pub struct Catalog {
    db: Database,
    categories: usize,
    products_per_category: usize,
    users: usize,
    next_order: u64,
}

/// Converts logical operation costs into microseconds of CPU demand.
///
/// Calibrated so the standard catalog's operations land near the
/// hand-calibrated demand table (see `demands`): an indexed probe costs a
/// few µs of B-tree walking, each materialized row a couple more (copying,
/// ORM hydration), and each KiB of payload its copy cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed CPU µs per query: protocol handling, parsing, planning — the
    /// part of a MySQL round trip that does not scale with data.
    pub us_per_query: f64,
    /// CPU µs per row read.
    pub us_per_row: f64,
    /// CPU µs per B-tree descent.
    pub us_per_probe: f64,
    /// CPU µs per row written (logging, page dirtying, fsync-adjacent work).
    pub us_per_write: f64,
    /// CPU µs per KiB materialized.
    pub us_per_kib: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            us_per_query: 150.0,
            us_per_row: 6.0,
            us_per_probe: 6.0,
            us_per_write: 250.0,
            us_per_kib: 3.0,
        }
    }
}

impl CostModel {
    /// The CPU demand (µs) of an operation with the given stats.
    pub fn demand_us(&self, stats: OpStats) -> f64 {
        self.us_per_query
            + self.us_per_row * stats.rows_read as f64
            + self.us_per_probe * stats.index_probes as f64
            + self.us_per_write * stats.rows_written as f64
            + self.us_per_kib * stats.bytes_out as f64 / 1024.0
    }
}

/// Products shown per category page (TeaStore's default grid).
pub const PAGE_SIZE: usize = 20;

impl Catalog {
    /// Generates the dataset deterministically from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn generate(
        rng: &mut Rng,
        categories: usize,
        products_per_category: usize,
        users: usize,
    ) -> Catalog {
        assert!(
            categories > 0 && products_per_category > 0 && users > 0,
            "catalog dimensions must be positive"
        );
        let mut db = Database::new();
        db.create_table(Schema::new("categories", &["name"]))
            .expect("fresh database");
        db.create_table(
            Schema::new(
                "products",
                &["category_id", "name", "price_cents", "description"],
            )
            .index_on("category_id"),
        )
        .expect("fresh database");
        db.create_table(Schema::new("users", &["name", "password_hash"]))
            .expect("fresh database");
        db.create_table(Schema::new("orders", &["user_id", "total_cents"]).index_on("user_id"))
            .expect("fresh database");

        const TEAS: [&str; 8] = [
            "Assam",
            "Darjeeling",
            "Sencha",
            "Gyokuro",
            "Oolong",
            "Rooibos",
            "Mate",
            "Pu-erh",
        ];
        for c in 0..categories {
            db.insert(
                "categories",
                c as u64,
                vec![Value::text(format!(
                    "{} Collection {c}",
                    TEAS[c % TEAS.len()]
                ))],
            )
            .expect("unique category keys");
            for p in 0..products_per_category {
                let key = (c * products_per_category + p) as u64;
                let price = 199 + rng.next_below(5_000) as i64;
                db.insert(
                    "products",
                    key,
                    vec![
                        Value::Int(c as i64),
                        Value::text(format!("{} No. {p}", TEAS[p % TEAS.len()])),
                        Value::Int(price),
                        Value::text(format!(
                            "A {} leaf, harvest lot {}.",
                            TEAS[(c + p) % TEAS.len()],
                            rng.next_below(10_000)
                        )),
                    ],
                )
                .expect("unique product keys");
            }
        }
        for u in 0..users {
            db.insert(
                "users",
                u as u64,
                vec![
                    Value::text(format!("user{u}")),
                    // Stand-in for a BCrypt hash: fixed-width opaque text.
                    Value::text(format!("$2y$10${:0>50}", rng.next_u64())),
                ],
            )
            .expect("unique user keys");
        }
        Catalog {
            db,
            categories,
            products_per_category,
            users,
            next_order: 0,
        }
    }

    /// TeaStore's default dataset shape: 16 categories × 100 products,
    /// 1 000 users.
    pub fn standard(rng: &mut Rng) -> Catalog {
        Catalog::generate(rng, 16, 100, 1_000)
    }

    /// The underlying database (read-only access for custom queries).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Number of categories.
    pub fn categories(&self) -> usize {
        self.categories
    }

    /// Products per category.
    pub fn products_per_category(&self) -> usize {
        self.products_per_category
    }

    /// Number of registered users.
    pub fn users(&self) -> usize {
        self.users
    }

    /// The category-page query: one page of products for `category`.
    pub fn op_category_page(&self, category: usize, page: usize) -> OpStats {
        let (_, stats) = self
            .db
            .select_eq(
                "products",
                "category_id",
                &Value::Int((category % self.categories) as i64),
                page * PAGE_SIZE,
                PAGE_SIZE,
            )
            .expect("catalog schema is fixed");
        stats
    }

    /// The product-page query: the product row plus its category row.
    pub fn op_product_page(&self, product: u64) -> OpStats {
        let total = self.categories * self.products_per_category;
        let (row, mut stats) = self
            .db
            .get("products", product % total as u64)
            .expect("product keys are dense");
        let Value::Int(category) = row.values[0] else {
            unreachable!("category_id is an Int column")
        };
        let (_, s2) = self
            .db
            .get("categories", category as u64)
            .expect("category keys are dense");
        stats.merge(s2);
        stats
    }

    /// The login lookup: fetch the user row (hash verification is Auth's
    /// CPU, not the store's).
    pub fn op_login(&self, user: u64) -> OpStats {
        let (_, stats) = self
            .db
            .get("users", user % self.users as u64)
            .expect("user keys are dense");
        stats
    }

    /// Order placement: one transactional insert.
    pub fn op_place_order(&mut self, user: u64, total_cents: i64) -> OpStats {
        let key = self.next_order;
        self.next_order += 1;
        self.db
            .insert(
                "orders",
                key,
                vec![
                    Value::Int((user % self.users as u64) as i64),
                    Value::Int(total_cents),
                ],
            )
            .expect("order keys are dense")
    }

    /// Derives the four store-query demands (µs) from measured operation
    /// costs: `(light lookup, category page, product page, order insert)`.
    ///
    /// Compare with the hand-calibrated `demands::DemandTable` — the test
    /// suite asserts they agree within a factor of two on the standard
    /// catalog.
    pub fn derived_query_demands(&mut self, model: &CostModel) -> (f64, f64, f64, f64) {
        let light = model.demand_us(self.op_login(7));
        let category = model.demand_us(self.op_category_page(3, 0));
        let product = model.demand_us(self.op_product_page(123));
        let order = model.demand_us(self.op_place_order(11, 1299));
        (light, category, product, order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demands::DemandTable;

    fn catalog() -> Catalog {
        Catalog::standard(&mut Rng::seed_from(42))
    }

    #[test]
    fn standard_catalog_shape() {
        let c = catalog();
        assert_eq!(c.db().row_count("categories").expect("table"), 16);
        assert_eq!(c.db().row_count("products").expect("table"), 1_600);
        assert_eq!(c.db().row_count("users").expect("table"), 1_000);
        assert_eq!(c.db().row_count("orders").expect("table"), 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Catalog::standard(&mut Rng::seed_from(1));
        let b = Catalog::standard(&mut Rng::seed_from(1));
        let (ra, _) = a.db().get("products", 55).expect("row");
        let (rb, _) = b.db().get("products", 55).expect("row");
        assert_eq!(ra, rb);
    }

    #[test]
    fn category_page_returns_a_full_page() {
        let c = catalog();
        let stats = c.op_category_page(5, 0);
        assert!(stats.rows_read >= PAGE_SIZE as u64);
        assert!(stats.bytes_out > 0);
        // Deeper pages cost more (index walk past the skipped rows).
        let deep = c.op_category_page(5, 3);
        assert!(deep.rows_read > stats.rows_read);
    }

    #[test]
    fn orders_accumulate() {
        let mut c = catalog();
        c.op_place_order(1, 999);
        c.op_place_order(2, 1999);
        assert_eq!(c.db().row_count("orders").expect("table"), 2);
    }

    #[test]
    fn derived_demands_match_hand_calibration_within_2x() {
        let mut c = catalog();
        let (light, category, product, order) = c.derived_query_demands(&CostModel::default());
        let hand = DemandTable::standard();
        let close = |derived: f64, hand: f64| {
            let ratio = derived / hand;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "derived {derived:.0}µs vs hand {hand:.0}µs (ratio {ratio:.2})"
            );
        };
        close(light, hand.query_light.mean_us);
        close(category, hand.query_products.mean_us);
        close(product, hand.query_light.mean_us);
        close(order, hand.query_order.mean_us);
    }

    #[test]
    fn bigger_catalogs_cost_more_per_category_page() {
        // 5× the products per category → the page query reads no more rows
        // (it is paged!) but a full-category *count* would; verify the page
        // cost is shape-stable while the data grows.
        let small = Catalog::generate(&mut Rng::seed_from(2), 8, 40, 100);
        let big = Catalog::generate(&mut Rng::seed_from(2), 8, 200, 100);
        let s = small.op_category_page(1, 0);
        let b = big.op_category_page(1, 0);
        assert_eq!(
            s.rows_read, b.rows_read,
            "paged queries are size-stable — that is why TeaStore paginates"
        );
        // But walking to the last page of the big catalog costs more.
        let last = big.op_category_page(1, 9);
        assert!(last.rows_read > b.rows_read);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimensions_rejected() {
        Catalog::generate(&mut Rng::seed_from(0), 0, 1, 1);
    }
}
