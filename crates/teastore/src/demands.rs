//! Calibrated CPU demands for TeaStore operations.
//!
//! All values are microseconds of *reference* CPU time (one core, no
//! contention, local memory) on the 2.25 GHz machine the paper uses.
//!
//! ## Calibration sources
//!
//! * Published TeaStore measurements (von Kistowski et al., ICPE'18) put
//!   single-request response times in the 5–30 ms range on contemporary
//!   hardware, dominated by WebUI JSP rendering; per-service CPU demands are
//!   single-digit milliseconds or below.
//! * The paper's abstract positions WebUI as the scaling bottleneck, with
//!   Persistence/DB next; demands below reproduce that ordering under the
//!   browse mix (WebUI ≈ 2× Persistence+DB ≈ 4× Image ≈ 8× Auth).
//! * BCrypt password verification (login) is intentionally two orders above
//!   a session check — that is its real cost and the reason TeaStore's Auth
//!   spikes under login-heavy mixes.
//!
//! Demands are sampled log-normally with CV 0.35 (typical for Java service
//! endpoints; see the `microsvc::Demand` docs).

use microsvc::Demand;
use serde::{Deserialize, Serialize};

/// The coefficient of variation applied to every demand.
pub const DEMAND_CV: f64 = 0.35;

/// Mean CPU demands (µs) for every TeaStore operation step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandTable {
    /// WebUI: render the landing page skeleton.
    pub webui_home: Demand,
    /// WebUI: light controller work (login form, cart op).
    pub webui_light: Demand,
    /// WebUI: category listing controller.
    pub webui_category: Demand,
    /// WebUI: product page controller.
    pub webui_product: Demand,
    /// WebUI: cart controller.
    pub webui_cart: Demand,
    /// WebUI: order controller.
    pub webui_buy: Demand,
    /// WebUI: full JSP render after data arrives.
    pub webui_render: Demand,
    /// WebUI: small JSP render.
    pub webui_render_light: Demand,
    /// Auth: session-token validation.
    pub auth_check: Demand,
    /// Auth: BCrypt login verification.
    pub auth_login: Demand,
    /// Auth: cart session update (encrypt + serialize).
    pub auth_cart: Demand,
    /// Persistence: ORM work for a light lookup.
    pub orm_light: Demand,
    /// Persistence: ORM work for the category list.
    pub orm_categories: Demand,
    /// Persistence: ORM work for a product page query.
    pub orm_product: Demand,
    /// Persistence: ORM work for a paged product listing.
    pub orm_products: Demand,
    /// Persistence: ORM work for order placement.
    pub orm_order: Demand,
    /// DB: a light indexed query.
    pub query_light: Demand,
    /// DB: the paged product-listing query.
    pub query_products: Demand,
    /// DB: transactional order insert.
    pub query_order: Demand,
    /// Recommender: collaborative-filtering scoring.
    pub recommend: Demand,
    /// ImageProvider: serve cached banner/logo images.
    pub image_banner: Demand,
    /// ImageProvider: serve a page of preview images.
    pub image_previews: Demand,
    /// ImageProvider: serve a full-size product image.
    pub image_full: Demand,
}

impl DemandTable {
    /// The calibrated table (scale 1.0).
    pub fn standard() -> Self {
        Self::scaled(1.0)
    }

    /// A table whose four store-query demands are *derived from data*: the
    /// [`Catalog`](crate::catalog::Catalog) executes the representative
    /// queries against the embedded store and the
    /// [`CostModel`](crate::catalog::CostModel) prices their measured
    /// [`OpStats`](storedb::OpStats). All non-query demands keep their
    /// calibrated values.
    pub fn with_catalog_queries(
        catalog: &mut crate::catalog::Catalog,
        model: &crate::catalog::CostModel,
        scale: f64,
    ) -> Self {
        let (light, category, product, order) = catalog.derived_query_demands(model);
        let mut table = Self::scaled(scale);
        let d = |us: f64| Demand::lognormal_us(us * scale, DEMAND_CV);
        table.query_light = d(light.min(product));
        table.query_products = d(category);
        table.query_order = d(order);
        table
    }

    /// The table with all means multiplied by `scale`.
    pub fn scaled(scale: f64) -> Self {
        let d = |us: f64| Demand::lognormal_us(us * scale, DEMAND_CV);
        DemandTable {
            webui_home: d(900.0),
            webui_light: d(500.0),
            webui_category: d(800.0),
            webui_product: d(700.0),
            webui_cart: d(600.0),
            webui_buy: d(700.0),
            webui_render: d(1_100.0),
            webui_render_light: d(500.0),
            auth_check: d(150.0),
            auth_login: d(2_500.0),
            auth_cart: d(300.0),
            orm_light: d(250.0),
            orm_categories: d(350.0),
            orm_product: d(350.0),
            orm_products: d(700.0),
            orm_order: d(800.0),
            query_light: d(200.0),
            query_products: d(450.0),
            query_order: d(550.0),
            recommend: d(850.0),
            image_banner: d(500.0),
            image_previews: d(1_200.0),
            image_full: d(800.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_equals_scale_one() {
        assert_eq!(DemandTable::standard(), DemandTable::scaled(1.0));
    }

    #[test]
    fn scaling_applies_to_every_field() {
        let a = DemandTable::scaled(1.0);
        let b = DemandTable::scaled(3.0);
        assert!((b.webui_home.mean_us - 3.0 * a.webui_home.mean_us).abs() < 1e-9);
        assert!((b.query_order.mean_us - 3.0 * a.query_order.mean_us).abs() < 1e-9);
        assert_eq!(a.webui_home.cv, DEMAND_CV);
    }

    #[test]
    fn bcrypt_login_dwarfs_session_check() {
        let d = DemandTable::standard();
        assert!(d.auth_login.mean_us > 10.0 * d.auth_check.mean_us);
    }

    #[test]
    fn catalog_derived_queries_replace_only_query_demands() {
        use crate::catalog::{Catalog, CostModel};
        let mut catalog = Catalog::standard(&mut simcore::Rng::seed_from(9));
        let derived = DemandTable::with_catalog_queries(&mut catalog, &CostModel::default(), 1.0);
        let hand = DemandTable::standard();
        // Non-query demands untouched.
        assert_eq!(derived.webui_home, hand.webui_home);
        assert_eq!(derived.auth_login, hand.auth_login);
        // Query demands came from the store and stay in the hand-calibrated
        // ballpark.
        let ratio = derived.query_products.mean_us / hand.query_products.mean_us;
        assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
        assert!(derived.query_order.mean_us > derived.query_light.mean_us);
    }
}
