//! Property test: the scanner never reports a finding whose span lies
//! inside a stripped string or comment region.
//!
//! Random interleavings of innocuous code, line/block/nested comments, and
//! string literals of every flavor (plain, multi-line, raw, byte) are
//! assembled into a source file. Hazard tokens (`std::collections::HashMap`,
//! `Instant::now()`, `f.stream(label)`) appear **only** inside the stripped
//! regions — except for dedicated real-hazard segments whose 1-indexed
//! lines are tracked. The lint report must flag exactly the real-hazard
//! lines: anything extra is a finding inside a stripped region, anything
//! missing or shifted is line-number drift.

use proptest::prelude::*;
use proptest::strategy::Just;
use simlint::config::Config;
use simlint::lint_sources;

/// One generated source segment. Every variant knows its rendered text and
/// how many source lines it spans.
#[derive(Debug, Clone)]
enum Seg {
    /// Innocuous single-line code.
    Code,
    /// `// …hazards…`
    LineComment,
    /// `/* …hazards… */` on one line.
    BlockComment,
    /// Nested block comment spanning three lines, hazards inside.
    NestedBlockComment,
    /// `let s = "…hazards…";`
    Str,
    /// String literal spanning three lines, hazards inside.
    MultiLineStr,
    /// `let r = r#"…hazards…"#;`
    RawStr,
    /// `let b = b"…hazards…";`
    ByteStr,
    /// A *real* D1 hazard in code — its line must be flagged, exactly.
    Hazard,
}

/// Hazard text planted inside stripped regions: D1, D2, and D7 bait.
const BAIT: &str = "std::collections::HashMap Instant::now() f.stream(label)";

impl Seg {
    fn render(&self, i: usize) -> String {
        match self {
            Seg::Code => format!("let a{i} = {i};"),
            Seg::LineComment => format!("// c{i}: {BAIT}"),
            Seg::BlockComment => format!("/* c{i}: {BAIT} */"),
            Seg::NestedBlockComment => {
                format!("/* c{i}\n/* inner {BAIT} */\nstill c{i} */ let n{i} = {i};")
            }
            Seg::Str => format!("let s{i} = \"{BAIT}\";"),
            Seg::MultiLineStr => format!("let m{i} = \"first\n{BAIT}\nlast\";"),
            Seg::RawStr => format!("let r{i} = r#\"{BAIT}\"#;"),
            Seg::ByteStr => format!("let b{i} = b\"{BAIT}\";"),
            Seg::Hazard => format!("let h{i}: std::collections::HashMap<u32, u32> = x;"),
        }
    }
}

fn seg_strategy() -> impl Strategy<Value = Seg> {
    prop_oneof![
        Just(Seg::Code),
        Just(Seg::LineComment),
        Just(Seg::BlockComment),
        Just(Seg::NestedBlockComment),
        Just(Seg::Str),
        Just(Seg::MultiLineStr),
        Just(Seg::RawStr),
        Just(Seg::ByteStr),
        Just(Seg::Hazard),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn findings_never_point_into_stripped_regions(
        segs in proptest::collection::vec((seg_strategy(), any::<u8>()), 1..40)
    ) {
        let mut source = String::new();
        let mut expected: Vec<usize> = Vec::new(); // 1-indexed hazard lines
        let mut line = 1usize;
        for (i, (seg, crlf)) in segs.iter().enumerate() {
            let text = seg.render(i);
            if matches!(seg, Seg::Hazard) {
                expected.push(line);
            }
            line += text.matches('\n').count() + 1;
            source.push_str(&text);
            // Mixed terminators: CRLF must behave exactly like LF.
            source.push_str(if crlf % 2 == 0 { "\n" } else { "\r\n" });
        }

        let cfg = Config::builtin();
        let report = lint_sources(&[("crates/x/src/lib.rs", source.as_str())], &cfg);
        let mut got: Vec<usize> = report.findings.iter().map(|f| f.line).collect();
        got.sort_unstable();
        got.dedup();
        prop_assert_eq!(
            got,
            expected,
            "flagged lines must be exactly the real-hazard lines\nsource:\n{}",
            source
        );
        prop_assert!(
            report.findings.iter().all(|f| f.rule == "D1"),
            "only the planted D1 hazards may fire: {:?}",
            report.findings
        );
    }
}
