//! Fixture tests: every rule must fire on its known-bad sample (exact rule
//! id and line numbers, asserted against the JSON output) and stay silent
//! on the allowlisted twin.

use simlint::config::Config;
use simlint::{lint_source, lint_sources, render_json, Finding, Report};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lints `name` as if it lived at `rel` and returns (findings, JSON).
/// Per-file rules only; the interprocedural rules need [`lint_fixture_tree`].
fn lint_fixture(name: &str, rel: &str) -> (Vec<Finding>, String) {
    let cfg = Config::builtin();
    let findings = lint_source(rel, &fixture(name), &cfg);
    let json = render_json(&Report {
        findings: findings.clone(),
        files_scanned: 1,
        ..Report::default()
    });
    (findings, json)
}

/// Lints fixture files together as one tree — both passes, so the
/// interprocedural rules (S1, H3, D7) run too.
fn lint_fixture_tree(pairs: &[(&str, &str)]) -> (Report, String) {
    let cfg = Config::builtin();
    let sources: Vec<(&str, String)> = pairs
        .iter()
        .map(|&(name, rel)| (rel, fixture(name)))
        .collect();
    let refs: Vec<(&str, &str)> = sources.iter().map(|(r, s)| (*r, s.as_str())).collect();
    let report = lint_sources(&refs, &cfg);
    let json = render_json(&report);
    (report, json)
}

/// Asserts the JSON report carries `rule` at exactly `lines` in `rel`.
fn assert_json_lines(json: &str, rule: &str, rel: &str, lines: &[usize]) {
    for &line in lines {
        let needle = format!(
            "{{\"rule\": \"{rule}\", \"severity\": \"deny\", \"file\": \"{rel}\", \"line\": {line},"
        );
        assert!(
            json.contains(&needle),
            "JSON must contain {needle}\ngot:\n{json}"
        );
    }
    let occurrences = json.matches(&format!("\"rule\": \"{rule}\"")).count();
    assert_eq!(
        occurrences,
        lines.len(),
        "expected exactly {} {rule} finding(s)\ngot:\n{json}",
        lines.len()
    );
}

#[test]
fn d1_fires_on_std_maps() {
    let rel = "crates/x/src/lib.rs";
    let (findings, json) = lint_fixture("d1_bad.rs", rel);
    assert!(findings.iter().all(|f| f.rule == "D1"));
    assert_json_lines(&json, "D1", rel, &[3, 4, 7]);
}

#[test]
fn d1_respects_allow() {
    let (findings, _) = lint_fixture("d1_allowed.rs", "crates/x/src/lib.rs");
    assert!(findings.is_empty(), "allowlisted: {findings:?}");
}

#[test]
fn d2_fires_on_wall_clock() {
    let rel = "crates/x/src/lib.rs";
    let (findings, json) = lint_fixture("d2_bad.rs", rel);
    assert!(findings.iter().all(|f| f.rule == "D2"));
    assert_json_lines(&json, "D2", rel, &[3, 6]);
}

#[test]
fn d2_respects_allow() {
    let (findings, _) = lint_fixture("d2_allowed.rs", "crates/x/src/lib.rs");
    assert!(findings.is_empty(), "allowlisted: {findings:?}");
}

#[test]
fn d2_respects_allow_paths() {
    // Path-level allowlisting (the simlint.toml escape hatch for bench).
    let cfg = Config::from_toml("[rules.D2]\nallow_paths = [\"crates/bench/\"]\n");
    let findings = lint_source("crates/bench/src/perf.rs", &fixture("d2_bad.rs"), &cfg);
    assert!(findings.is_empty(), "bench is allowlisted: {findings:?}");
}

#[test]
fn d3_fires_on_direct_seeding() {
    let rel = "crates/x/src/lib.rs";
    let (findings, json) = lint_fixture("d3_bad.rs", rel);
    assert!(findings.iter().all(|f| f.rule == "D3"));
    assert_json_lines(&json, "D3", rel, &[4]);
}

#[test]
fn d3_respects_allow() {
    let (findings, _) = lint_fixture("d3_allowed.rs", "crates/x/src/lib.rs");
    assert!(findings.is_empty(), "allowlisted: {findings:?}");
}

#[test]
fn d3_fires_on_positional_forking() {
    // The chaos-sampler path: plans must come from substream(label, index),
    // never from fork-order identity.
    let rel = "crates/microsvc/src/chaos.rs";
    let (findings, json) = lint_fixture("d3_fork_bad.rs", rel);
    assert!(findings.iter().all(|f| f.rule == "D3"));
    assert_json_lines(&json, "D3", rel, &[9]);
}

#[test]
fn d3_forking_respects_labels_and_allow() {
    let (findings, _) = lint_fixture("d3_fork_allowed.rs", "crates/microsvc/src/chaos.rs");
    assert!(findings.is_empty(), "labeled / allowlisted: {findings:?}");
}

#[test]
fn d4_fires_on_captured_accumulation() {
    let rel = "crates/x/src/lib.rs";
    let (findings, json) = lint_fixture("d4_bad.rs", rel);
    assert!(findings.iter().all(|f| f.rule == "D4"));
    assert_json_lines(&json, "D4", rel, &[6]);
}

#[test]
fn d4_silent_on_ordered_reduce_and_allow() {
    let (findings, _) = lint_fixture("d4_allowed.rs", "crates/x/src/lib.rs");
    assert!(
        findings.is_empty(),
        "ordered reduce / allowlisted: {findings:?}"
    );
}

#[test]
fn d5_fires_on_unsnapshotted_state_in_sim_crates_only() {
    // D5 is scoped to the simulation crates; the same source in bench or
    // tooling code is silent.
    let rel = "crates/simcore/src/widget.rs";
    let (findings, json) = lint_fixture("d5_bad.rs", rel);
    assert!(findings.iter().all(|f| f.rule == "D5"));
    assert_json_lines(&json, "D5", rel, &[4, 5, 9]);

    let (elsewhere, _) = lint_fixture("d5_bad.rs", "crates/bench/src/lib.rs");
    assert!(elsewhere.is_empty(), "D5 out of scope: {elsewhere:?}");
}

#[test]
fn d5_respects_allow() {
    let (findings, _) = lint_fixture("d5_allowed.rs", "crates/simcore/src/widget.rs");
    assert!(findings.is_empty(), "allowlisted: {findings:?}");
}

#[test]
fn d5_skips_files_that_participate_in_the_snapshot_registry() {
    // A file carrying any snapshot plumbing is covered dynamically by the
    // differential battery (tests/snapshot.rs), not flagged statically.
    let cfg = Config::builtin();
    let source = format!(
        "{}\nimpl Widget {{\n    pub fn snap_save(&self) {{}}\n}}\n",
        fixture("d5_bad.rs")
    );
    let findings = lint_source("crates/simcore/src/widget.rs", &source, &cfg);
    assert!(findings.is_empty(), "registered file: {findings:?}");
}

#[test]
fn d6_fires_on_spawn_closure_mutating_captured_state() {
    let rel = "crates/x/src/lib.rs";
    let (findings, json) = lint_fixture("d6_bad.rs", rel);
    assert!(findings.iter().all(|f| f.rule == "D6"), "{findings:?}");
    assert_json_lines(&json, "D6", rel, &[9]);
}

#[test]
fn d6_silent_on_mailbox_sends_join_reduce_and_allow() {
    let (findings, _) = lint_fixture("d6_allowed.rs", "crates/x/src/lib.rs");
    assert!(
        findings.is_empty(),
        "mailbox/reduce/allowlisted: {findings:?}"
    );
}

#[test]
fn h1_fires_inside_fence_only() {
    let rel = "crates/x/src/lib.rs";
    let (findings, json) = lint_fixture("h1_bad.rs", rel);
    assert!(findings.iter().all(|f| f.rule == "H1"));
    // Line 12 allocates too, but outside the fence — must not fire.
    assert_json_lines(&json, "H1", rel, &[5]);
}

#[test]
fn h1_respects_allow() {
    let (findings, _) = lint_fixture("h1_allowed.rs", "crates/x/src/lib.rs");
    assert!(findings.is_empty(), "allowlisted: {findings:?}");
}

#[test]
fn h1_fires_on_speculation_replay_allocations() {
    // The micro-snapshot/rollback-replay shape: every allocation needle
    // inside the fence fires, one finding per line; the cold path outside
    // the fence (line 19) stays silent.
    let rel = "crates/microsvc/src/shard.rs";
    let (findings, json) = lint_fixture("h1_spec_bad.rs", rel);
    assert!(findings.iter().all(|f| f.rule == "H1"), "{findings:?}");
    assert_json_lines(&json, "H1", rel, &[6, 8, 12, 14]);
}

#[test]
fn h1_silent_on_reuse_first_replay() {
    // Same shape written pay-as-you-go: clear + extend_from_slice,
    // partition_point prefix cuts, mem::take buffer swaps, and one
    // explicitly allowlisted cold-start growth.
    let (findings, _) = lint_fixture("h1_spec_allowed.rs", "crates/microsvc/src/shard.rs");
    assert!(findings.is_empty(), "pay-as-you-go replay: {findings:?}");
}

#[test]
fn h2_fires_in_scoped_path_only() {
    // H2 is scoped to simcore's time arithmetic; the same source elsewhere
    // is silent.
    let rel = "crates/simcore/src/time.rs";
    let (findings, json) = lint_fixture("h2_bad.rs", rel);
    assert!(findings.iter().all(|f| f.rule == "H2"));
    assert_json_lines(&json, "H2", rel, &[4]);

    let (elsewhere, _) = lint_fixture("h2_bad.rs", "crates/x/src/lib.rs");
    assert!(elsewhere.is_empty(), "H2 out of scope: {elsewhere:?}");
}

#[test]
fn h2_respects_allow() {
    let (findings, _) = lint_fixture("h2_allowed.rs", "crates/simcore/src/time.rs");
    assert!(findings.is_empty(), "allowlisted: {findings:?}");
}

#[test]
fn baseline_demotes_findings_without_hiding_them() {
    let cfg = Config::from_toml("[baseline]\nentries = [\"D3:crates/x/src/lib.rs\"]\n");
    let findings = lint_source("crates/x/src/lib.rs", &fixture("d3_bad.rs"), &cfg);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].baselined, "reported but tolerated");
    let report = Report {
        findings,
        files_scanned: 1,
        ..Report::default()
    };
    assert_eq!(report.gating_count(), 0);
    assert!(render_json(&report).contains("\"baselined\": true"));
}

// ================================================ interprocedural (pass 2)

#[test]
fn s1_fires_on_unplumbed_fields_at_definition_lines() {
    let rel = "crates/x/src/lib.rs";
    let (report, json) = lint_fixture_tree(&[("s1_bad.rs", rel)]);
    assert!(report.findings.iter().all(|f| f.rule == "S1"));
    // `lost` (line 6) is never written in snap_save; `half` (line 7) is
    // saved but never restored.
    assert_json_lines(&json, "S1", rel, &[6, 7]);
    let lost = report.findings.iter().find(|f| f.line == 6).unwrap();
    assert!(
        lost.message.contains("`lost`") && lost.message.contains("never written in snap_save"),
        "definition-site diagnostic: {}",
        lost.message
    );
    let half = report.findings.iter().find(|f| f.line == 7).unwrap();
    assert!(
        half.message.contains("`half`") && half.message.contains("never read in snap_restore"),
        "restore-side diagnostic: {}",
        half.message
    );
}

#[test]
fn s1_respects_allow() {
    let (report, _) = lint_fixture_tree(&[("s1_allowed.rs", "crates/x/src/lib.rs")]);
    assert!(report.findings.is_empty(), "allowlisted: {:?}", report.findings);
}

#[test]
fn h3_fires_on_transitive_alloc_with_chain_named() {
    let rel = "crates/x/src/lib.rs";
    let (report, json) = lint_fixture_tree(&[("h3_bad.rs", rel)]);
    assert!(report.findings.iter().all(|f| f.rule == "H3"));
    // The fenced call `route(n)` sits on line 7; `shape` allocates two
    // hops down on line 16.
    assert_json_lines(&json, "H3", rel, &[7]);
    let f = &report.findings[0];
    assert!(
        f.message.contains("chain: route → shape"),
        "chain named in the diagnostic: {}",
        f.message
    );
    assert!(
        f.message.contains("Vec::new") && f.message.contains("crates/x/src/lib.rs:16"),
        "offending needle and line named: {}",
        f.message
    );
}

#[test]
fn h3_respects_allow_at_call_site() {
    let (report, _) = lint_fixture_tree(&[("h3_allowed.rs", "crates/x/src/lib.rs")]);
    assert!(report.findings.is_empty(), "allowlisted: {:?}", report.findings);
}

#[test]
fn d7_fires_on_cross_module_label_collision() {
    let rel_a = "crates/x/src/a.rs";
    let rel_b = "crates/x/src/b.rs";
    let (report, json) = lint_fixture_tree(&[("d7_dup_a.rs", rel_a), ("d7_dup_b.rs", rel_b)]);
    assert!(report.findings.iter().all(|f| f.rule == "D7"));
    // The collision is reported at the *second* site (module B, line 5),
    // referencing the canonical first derivation (module A, line 5).
    assert_json_lines(&json, "D7", rel_b, &[5]);
    let f = &report.findings[0];
    assert!(
        f.message.contains("\"arrivals\"") && f.message.contains("crates/x/src/a.rs:5"),
        "collision references the canonical site: {}",
        f.message
    );
    // The registry carries both sites under one label.
    let entry = report
        .rng_streams
        .iter()
        .find(|e| e.label == "arrivals")
        .expect("registry entry");
    assert_eq!(
        entry.sites,
        vec![(rel_a.to_owned(), 5), (rel_b.to_owned(), 5)]
    );
    assert!(
        json.contains("\"label\": \"arrivals\""),
        "registry rendered under --format json:\n{json}"
    );
}

#[test]
fn d7_fires_on_non_literal_label() {
    let rel = "crates/x/src/lib.rs";
    let (report, json) = lint_fixture_tree(&[("d7_bad.rs", rel)]);
    assert!(report.findings.iter().all(|f| f.rule == "D7"));
    assert_json_lines(&json, "D7", rel, &[5]);
    assert!(report.findings[0].message.contains("not a string literal"));
}

#[test]
fn d7_respects_allow_and_registers_literals() {
    let (report, _) = lint_fixture_tree(&[("d7_allowed.rs", "crates/x/src/lib.rs")]);
    assert!(report.findings.is_empty(), "allowlisted: {:?}", report.findings);
    assert_eq!(report.rng_streams.len(), 1);
    assert_eq!(report.rng_streams[0].label, "arrivals");
}

#[test]
fn same_module_relabeling_is_not_a_collision() {
    // One module deriving its own label twice reproduces the same stream
    // by design; only a *different* module colliding is a hazard.
    let rel = "crates/x/src/a.rs";
    let (report, _) = lint_fixture_tree(&[("d7_dup_a.rs", rel), ("d7_dup_a.rs", rel)]);
    // (Same file listed twice: both sites carry the same rel path.)
    assert!(
        report.findings.is_empty(),
        "same-module re-derivation: {:?}",
        report.findings
    );
}
