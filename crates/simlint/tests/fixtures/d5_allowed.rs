//! D5 fixture: the same state, each field explicitly waived — scratch or
//! derived state that a resume rebuilds rather than restores.

pub struct Widget {
    rng: Rng,            // simlint: allow(D5) — forked per call, never carried
    history: TimeSeries, // simlint: allow(D5) — re-derived on restore
}

pub struct Meter {
    rate: RateMeter, // simlint: allow(D5) — measurement-side only
}
