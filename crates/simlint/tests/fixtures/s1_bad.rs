//! S1 fixture: snapshotting type with un-plumbed fields (known-bad).

pub struct Cursor {
    pub pos: u64,
    pub seq: u64,
    pub lost: u64,
    pub half: u64,
}

impl Cursor {
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.u64(self.pos);
        w.u64(self.seq);
        w.u64(self.half);
    }

    pub fn snap_restore(&mut self, r: &mut SnapReader<'_>) {
        self.pos = r.u64();
        self.seq = r.u64();
    }
}
