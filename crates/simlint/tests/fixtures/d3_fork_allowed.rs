//! D3 fixture: the labeled twin — every draw is addressed by coordinates,
//! plus an explicitly allowlisted fork.

pub fn sample_plans(factory: &simcore::rng::RngFactory, seed: u64) -> Vec<u64> {
    let mut out = Vec::new();
    for index in 0..4u64 {
        let mut child = factory.substream("chaos.plan", index);
        out.push(child.next_u64());
    }
    let mut parent = factory.stream("legacy");
    let mut waived = parent.fork(); // simlint: allow(D3)
    out.push(waived.next_u64());
    let _ = seed;
    out
}
