//! H3 fixture: a fenced call reaching allocation two hops down (known-bad).
//! The fence itself is H1-clean — the hazard is only visible through the
//! call graph: `dispatch` → `route` → `shape`, and `shape` allocates.

// simlint: hotpath(begin)
pub fn dispatch(n: u32) -> u32 {
    route(n)
}
// simlint: hotpath(end)

fn route(n: u32) -> u32 {
    shape(n)
}

fn shape(n: u32) -> u32 {
    let mut v = Vec::new();
    v.push(n);
    v.len() as u32
}
