//! D6 fixture: the sanctioned shapes — per-worker values merged on the
//! driver thread after join, mailbox sends, and an explicit waiver.

pub fn drain_cells(cells: &mut [Cell]) -> u64 {
    let counts = std::thread::scope(|s| {
        let handles: Vec<_> = cells
            .iter_mut()
            .map(|cell| {
                s.spawn(|| {
                    let mut events = 0u64;
                    cell.advance();
                    events += cell.events();
                    cell.outbox().push(cell.drain_msg());
                    events
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
    });
    let mut total = 0u64;
    for n in counts {
        total += n;
    }
    total
}

pub fn drain_waived(cells: &mut [Cell], scratch: &mut Stats) {
    std::thread::scope(|s| {
        s.spawn(|| {
            scratch.events += 1; // simlint: allow(D6)
        });
    });
}
