//! D4 fixture: per-item results reduced in order — and an allowlisted
//! accumulation for completeness.

pub fn sum(items: Vec<f64>) -> f64 {
    let parts = scaleup::par::map(items, |x| {
        let doubled = x * 2.0;
        doubled
    });
    let mut total = 0.0;
    for p in parts {
        total += p;
    }
    total
}

pub fn sum_allowed(items: Vec<f64>) -> f64 {
    let mut total = 0.0;
    scaleup::par::map(items, |x| {
        total += x; // simlint: allow(D4)
    });
    total
}
