//! H1 fixture: the same speculation replay shape written pay-as-you-go —
//! reusable buffers, prefix cuts, and one allowlisted cold-start growth.

// simlint: hotpath(begin)
pub fn micro_save(state: &[u8], snap_buf: &mut Vec<u8>) {
    snap_buf.clear();
    snap_buf.extend_from_slice(state);
}

pub fn rollback_replay(scratch: &mut Vec<u64>, last_early: &mut Vec<u64>, horizon: u64) {
    let cut = scratch.partition_point(|&b| b <= horizon);
    let staged = std::mem::take(scratch);
    last_early.clear();
    last_early.extend_from_slice(&staged[..cut]);
    *scratch = staged;
    let mut spill = Vec::new(); // simlint: allow(H1)
    spill.push(horizon);
}
// simlint: hotpath(end)
