//! D3 fixture: RNG construction bypassing the labeled-stream API.

pub fn roll(seed: u64) -> u64 {
    let mut rng = simcore::rng::Rng::seed_from(seed);
    rng.next_u64()
}
