//! D3 fixture: positional forking — the chaos-sampler bypass. Each child's
//! identity is its fork *order*, so inserting one draw upstream shifts
//! every plan sampled after it.

pub fn sample_plans(factory: &simcore::rng::RngFactory) -> Vec<u64> {
    let mut parent = factory.stream("chaos.plan");
    let mut out = Vec::new();
    for _ in 0..4 {
        let mut child = parent.fork();
        out.push(child.next_u64());
    }
    out
}
