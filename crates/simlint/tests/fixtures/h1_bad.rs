//! H1 fixture: allocation inside a hotpath fence (known-bad).

// simlint: hotpath(begin)
pub fn dispatch(ids: &[u32]) -> Vec<u32> {
    let mut picked = Vec::new();
    picked.extend_from_slice(ids);
    picked
}
// simlint: hotpath(end)

pub fn outside() -> Vec<u32> {
    Vec::new()
}
