//! H2 fixture: the same cast, range-asserted and allowlisted.

pub fn to_ns(secs: f64) -> u64 {
    assert!(secs >= 0.0 && secs * 1e9 <= u64::MAX as f64);
    (secs * 1e9) as u64 // simlint: allow(H2)
}
