//! D3 fixture: the same construction, explicitly allowlisted.

pub fn roll(seed: u64) -> u64 {
    let mut rng = simcore::rng::Rng::seed_from(seed); // simlint: allow(D3)
    rng.next_u64()
}
