//! H1 fixture: speculation micro-snapshot/replay path with fence-internal
//! allocations (known-bad). Models the Cell rollback machinery.

// simlint: hotpath(begin)
pub fn micro_save(state: &[u8], out: &mut Vec<u8>) -> Vec<u8> {
    let snapshot = state.to_vec();
    out.extend_from_slice(&snapshot);
    snapshot.clone()
}

pub fn rollback_replay(scratch: &[u64], cut: usize) -> String {
    let mut replay = Vec::new();
    replay.extend_from_slice(&scratch[..cut]);
    format!("replayed {} messages", replay.len())
}
// simlint: hotpath(end)

pub fn cold_path() -> Vec<u64> {
    Vec::new()
}
