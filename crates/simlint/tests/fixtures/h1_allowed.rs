//! H1 fixture: fence-internal allocation, explicitly allowlisted
//! (cold-start growth, not steady state).

// simlint: hotpath(begin)
pub fn dispatch(ids: &[u32]) -> Vec<u32> {
    let mut picked = Vec::new(); // simlint: allow(H1)
    picked.extend_from_slice(ids);
    picked
}
// simlint: hotpath(end)
