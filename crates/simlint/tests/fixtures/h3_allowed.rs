//! H3 fixture: the same transitive allocation as `h3_bad.rs`, waived at
//! the call site with a reason (the allowlisted twin).

// simlint: hotpath(begin)
pub fn dispatch(n: u32) -> u32 {
    route(n) // simlint: allow(H3) — slab growth, amortized cold start
}
// simlint: hotpath(end)

fn route(n: u32) -> u32 {
    shape(n)
}

fn shape(n: u32) -> u32 {
    let mut v = Vec::new();
    v.push(n);
    v.len() as u32
}
