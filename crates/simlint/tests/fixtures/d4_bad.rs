//! D4 fixture: order-sensitive accumulation across a parallel boundary.

pub fn sum(items: Vec<f64>) -> f64 {
    let mut total = 0.0;
    scaleup::par::map(items, |x| {
        total += x;
    });
    total
}
