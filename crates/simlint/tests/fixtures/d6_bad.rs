//! D6 fixture: shard worker closure mutating state captured from outside —
//! cross-shard effects must travel through the mailbox/merge API instead.

pub fn drain_cells(cells: &mut [Cell], scratch: &mut Stats) {
    std::thread::scope(|s| {
        for cell in cells.iter_mut() {
            s.spawn(|| {
                cell.advance();
                scratch.events += cell.events();
            });
        }
    });
}
