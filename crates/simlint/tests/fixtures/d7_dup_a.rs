//! D7 fixture, module A: derives the `"arrivals"` stream first — the
//! canonical site the collision in `d7_dup_b.rs` is reported against.

pub fn setup(factory: &RngFactory) -> Rng {
    factory.stream("arrivals")
}
