//! D7 fixture: the allowlisted twin — a computed label waived with a
//! reason, and a literal derivation (unique labels never fire).

pub fn setup(factory: &RngFactory, label: &str) -> Rng {
    factory.stream(label) // simlint: allow(D7) — test harness relabels per case
}

pub fn arrivals(factory: &RngFactory) -> Rng {
    factory.stream("arrivals")
}
