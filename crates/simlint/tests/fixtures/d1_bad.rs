//! D1 fixture: std hash collections in simulation state (known-bad).

use std::collections::HashMap;
use std::collections::HashSet;

pub fn footprint() -> usize {
    let m: std::collections::HashMap<u32, u32> = Default::default();
    let s: HashSet<u32> = HashSet::default();
    m.capacity() + s.capacity()
}
