//! D2 fixture: wall-clock reads, explicitly allowlisted (calibration code).

use std::time::Instant; // simlint: allow(D2)

pub fn elapsed_ns() -> u128 {
    let t0 = Instant::now(); // simlint: allow(D2)
    t0.elapsed().as_nanos()
}
