//! H2 fixture: truncating cast in simulated-time arithmetic (known-bad).

pub fn to_ns(secs: f64) -> u64 {
    (secs * 1e9) as u64
}
