//! D7 fixture: a stream label that is not a string literal (known-bad) —
//! the registry cannot prove a computed label collision-free.

pub fn setup(factory: &RngFactory, label: &str) -> Rng {
    factory.stream(label)
}
