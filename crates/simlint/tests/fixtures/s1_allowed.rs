//! S1 fixture: deliberately un-plumbed fields, waived at the definition
//! site with a reason (the allowlisted twin of `s1_bad.rs`).

pub struct Cursor {
    pub pos: u64,
    pub grain: u64, // simlint: allow(S1) — config, fixed at construction
    pub scratch: Vec<u32>, // simlint: allow(S1) — scratch, always drained
}

impl Cursor {
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.u64(self.pos);
    }

    pub fn snap_restore(&mut self, r: &mut SnapReader<'_>) {
        self.pos = r.u64();
    }
}
