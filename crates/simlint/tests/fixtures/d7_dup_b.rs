//! D7 fixture, module B: derives the same `"arrivals"` label as module A —
//! the two "independent" streams silently share every draw (known-bad).

pub fn setup(factory: &RngFactory) -> Rng {
    factory.stream("arrivals")
}
