//! D5 fixture: live sim state with no snapshot plumbing in the file.

pub struct Widget {
    rng: Rng,
    history: TimeSeries,
}

pub struct Meter {
    rate: RateMeter,
}
