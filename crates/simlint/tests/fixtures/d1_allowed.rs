//! D1 fixture: the same hazards, explicitly allowlisted.

use std::collections::HashMap; // simlint: allow(D1)
use std::collections::HashSet; // simlint: allow(D1)

pub fn footprint() -> usize {
    // simlint: allow(D1)
    let m: std::collections::HashMap<u32, u32> = Default::default();
    let s: HashSet<u32> = HashSet::default();
    m.capacity() + s.capacity()
}
