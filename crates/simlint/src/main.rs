//! `simlint` CLI.
//!
//! ```text
//! cargo run -p simlint --                 # text report, exit 1 on gating findings
//! cargo run -p simlint -- --format json   # machine-readable (CI artifact)
//! cargo run -p simlint -- --format github # ::error annotations for Actions
//! cargo run -p simlint -- --root PATH     # lint a tree other than the cwd's
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut format = "text".to_owned();
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                format = args.next().unwrap_or_else(|| {
                    eprintln!("--format needs a value (text|json|github)");
                    std::process::exit(2);
                });
            }
            "--root" => {
                root = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--root needs a path");
                    std::process::exit(2);
                })));
            }
            "--help" | "-h" => {
                println!(
                    "simlint: determinism & invariant linter\n\n  \
                     --format text|json|github  output format (default text)\n  \
                     --root PATH                workspace root (default: walk up to simlint.toml)\n\n\
                     Exit status: 0 clean, 1 gating findings or stale baseline, 2 usage error."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    if format != "text" && format != "json" && format != "github" {
        eprintln!("unknown format: {format} (want text|json|github)");
        return ExitCode::from(2);
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = root.unwrap_or_else(|| simlint::find_root(&cwd));
    let report = simlint::lint_workspace(&root);

    match format.as_str() {
        "json" => print!("{}", simlint::render_json(&report)),
        "github" => print!("{}", simlint::render_github(&report)),
        _ => print!("{}", simlint::render_text(&report)),
    }

    // Stale baseline entries gate like findings: a paid-off entry left in
    // place would silently tolerate the next regression it names.
    if report.gating_count() > 0 || !report.stale_baseline.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
