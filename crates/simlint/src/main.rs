//! `simlint` CLI.
//!
//! ```text
//! cargo run -p simlint --               # text report, exit 1 on gating findings
//! cargo run -p simlint -- --format json # machine-readable (CI artifact)
//! cargo run -p simlint -- --root PATH   # lint a tree other than the cwd's
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut format = "text".to_owned();
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                format = args.next().unwrap_or_else(|| {
                    eprintln!("--format needs a value (text|json)");
                    std::process::exit(2);
                });
            }
            "--root" => {
                root = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--root needs a path");
                    std::process::exit(2);
                })));
            }
            "--help" | "-h" => {
                println!(
                    "simlint: determinism & invariant linter\n\n  \
                     --format text|json   output format (default text)\n  \
                     --root PATH          workspace root (default: walk up to simlint.toml)\n\n\
                     Exit status: 0 clean, 1 gating findings, 2 usage error."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    if format != "text" && format != "json" {
        eprintln!("unknown format: {format} (want text|json)");
        return ExitCode::from(2);
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = root.unwrap_or_else(|| simlint::find_root(&cwd));
    let report = simlint::lint_workspace(&root);

    if format == "json" {
        print!("{}", simlint::render_json(&report));
    } else {
        print!("{}", simlint::render_text(&report));
    }

    if report.gating_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
