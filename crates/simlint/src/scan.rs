//! Source model: a lossy-but-line-exact view of one Rust file.
//!
//! The linter does not parse Rust (the build is offline; no `syn`). Instead
//! a small state machine walks the raw text once and produces, per line:
//!
//! * a **code view** — the line with comments, string/char literals and
//!   doc-text blanked out (replaced by spaces), so token searches cannot
//!   match inside prose or literals;
//! * the set of rules **allowed** on that line (`// simlint: allow(R, …)`
//!   trailing a line applies to that line; on a line of its own it applies
//!   to the next line);
//! * whether the line is inside a `// simlint: hotpath(begin)` …
//!   `// simlint: hotpath(end)` fence;
//! * whether the line is inside a `#[cfg(test)]`-guarded item (brace
//!   tracked on the code view, so braces in strings cannot confuse it).
//!
//! The state machine understands line comments, nested block comments,
//! string literals with escapes, raw strings (`r"…"`, `r#"…"#`, any number
//! of hashes), char literals, and leaves lifetimes (`'a`) alone.

/// The per-line model of one source file.
#[derive(Debug, Default)]
pub struct SourceModel {
    /// Code view, one entry per line, comments/literals blanked.
    pub code: Vec<String>,
    /// Rules explicitly allowed per line (resolved: trailing + previous-line
    /// standalone directives).
    pub allows: Vec<Vec<String>>,
    /// Line is inside a hotpath fence.
    pub hotpath: Vec<bool>,
    /// Line is inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
}

impl SourceModel {
    /// Whether `rule` is allowed on 0-indexed `line`.
    pub fn is_allowed(&self, line: usize, rule: &str) -> bool {
        self.allows
            .get(line)
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    Block(u32),
    Str,
    RawStr(u32),
}

/// Builds the [`SourceModel`] for `source`.
pub fn model(source: &str) -> SourceModel {
    let mut code_lines: Vec<String> = Vec::new();
    let mut comment_lines: Vec<String> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();

    let mut state = State::Code;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\r' && next == Some('\n') {
            // CRLF: the `\r` is part of the line terminator, not the line.
            // Dropping it (in every state) keeps the code view aligned
            // char-for-char with `str::lines`, which strips it too — so
            // reported columns and the raw-line mapping cannot drift.
            i += 1;
            continue;
        }
        if c == '\n' {
            // Line comments end at the newline; everything else carries over.
            if state == State::LineComment {
                state = State::Code;
            }
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(std::mem::take(&mut comment));
            i += 1;
            continue;
        }
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    code.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::Block(1);
                    code.push_str("  ");
                    i += 2;
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string: r"…" or r#"…"# (any # count).
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        for _ in i..=j {
                            code.push(' ');
                        }
                        i = j + 1;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
                '"' => {
                    state = State::Str;
                    code.push(' ');
                    i += 1;
                }
                '\'' => {
                    // Char literal vs lifetime: a literal closes with ' within
                    // a few chars ('x', '\n', '\u{1F600}'); a lifetime never
                    // closes. Look ahead conservatively.
                    let mut j = i + 1;
                    if chars.get(j) == Some(&'\\') {
                        // Escape: skip to the closing quote (bounded scan).
                        j += 1;
                        let mut steps = 0;
                        while j < chars.len() && chars[j] != '\'' && steps < 10 {
                            j += 1;
                            steps += 1;
                        }
                        if chars.get(j) == Some(&'\'') {
                            for _ in i..=j {
                                code.push(' ');
                            }
                            i = j + 1;
                            continue;
                        }
                    } else if chars.get(j).is_some() && chars.get(j + 1) == Some(&'\'') {
                        // 'x'
                        code.push_str("   ");
                        i = j + 2;
                        continue;
                    }
                    // Lifetime (or malformed): keep as code.
                    code.push(c);
                    i += 1;
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            State::Block(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::Block(depth + 1);
                    code.push_str("  ");
                    i += 2;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    if next == Some('\n') {
                        // Line-continuation escape: keep the newline so line
                        // numbers stay exact.
                        code.push(' ');
                        i += 1;
                    } else {
                        code.push_str("  ");
                        i += 2;
                    }
                } else if c == '"' {
                    state = State::Code;
                    code.push(' ');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    // Closing needs `"` followed by `hashes` #s.
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes as usize {
                            code.push(' ');
                        }
                        i += 1 + hashes as usize;
                        state = State::Code;
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
            }
        }
    }
    code_lines.push(code);
    comment_lines.push(comment);

    let n = code_lines.len();
    let mut allows: Vec<Vec<String>> = vec![Vec::new(); n];
    let mut hotpath = vec![false; n];

    // Directives from line comments.
    let mut fence_open = false;
    for (idx, comment) in comment_lines.iter().enumerate() {
        let Some(pos) = comment.find("simlint:") else {
            if fence_open {
                hotpath[idx] = true;
            }
            continue;
        };
        let directive = comment[pos + "simlint:".len()..].trim();
        if let Some(rest) = directive.strip_prefix("allow(") {
            if let Some(end) = rest.find(')') {
                let rules: Vec<String> = rest[..end]
                    .split(',')
                    .map(|r| r.trim().to_owned())
                    .filter(|r| !r.is_empty())
                    .collect();
                let standalone = code_lines[idx].trim().is_empty();
                let target = if standalone { idx + 1 } else { idx };
                if let Some(slot) = allows.get_mut(target) {
                    slot.extend(rules);
                }
            }
        } else if directive.starts_with("hotpath(begin)") {
            fence_open = true;
        } else if directive.starts_with("hotpath(end)") {
            fence_open = false;
        }
        if fence_open {
            hotpath[idx] = true;
        }
    }

    // `#[cfg(test)]` regions, brace-tracked on the code view.
    let mut in_test = vec![false; n];
    let mut pending = false; // saw the attribute, waiting for the item's `{`
    let mut depth: i32 = 0;
    for (idx, line) in code_lines.iter().enumerate() {
        if !pending && depth == 0 && line.contains("#[cfg(test)]") {
            pending = true;
        }
        if pending || depth > 0 {
            in_test[idx] = true;
        }
        if pending || depth > 0 {
            for c in line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        pending = false;
                    }
                    '}' => {
                        depth -= 1;
                        if depth <= 0 && !pending {
                            depth = 0;
                        }
                    }
                    _ => {}
                }
            }
            if depth == 0 && !pending {
                // Region closed on this line; later lines are code again.
            }
        }
    }

    SourceModel {
        code: code_lines,
        allows,
        hotpath,
        in_test,
    }
}

/// Finds `needle` in `line` at a token boundary: the characters immediately
/// before and after the match must not be identifier characters. Returns the
/// byte offset of the first such match.
pub fn find_token(line: &str, needle: &str) -> Option<usize> {
    let ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(rel) = line[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0 || !ident(line[..at].chars().next_back().unwrap_or(' '));
        let after = line[at + needle.len()..].chars().next().unwrap_or(' ');
        if before_ok && !ident(after) {
            return Some(at);
        }
        from = at + needle.len().max(1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let m = model("let x = \"HashMap\"; // HashMap here\nlet y = 1;");
        assert!(!m.code[0].contains("HashMap"));
        assert!(m.code[1].contains("let y"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let m = model("let s = r#\"Instant::now()\"#; let c = 'I'; let l: &'static str = \"x\";");
        assert!(!m.code[0].contains("Instant"));
        assert!(m.code[0].contains("static"), "lifetimes survive");
    }

    #[test]
    fn nested_block_comments() {
        let m = model("/* outer /* inner */ still comment */ let z = 3;");
        assert!(m.code[0].contains("let z"));
        assert!(!m.code[0].contains("outer"));
    }

    #[test]
    fn nested_block_comments_keep_line_numbers_exact() {
        // A nested comment spanning lines must not swallow or duplicate
        // lines: code after the close lands on the right 0-indexed line.
        let src = "/* one\n/* two\nstill */\nalso */ let a = 1;\nlet b = 2;";
        let m = model(src);
        assert_eq!(m.code.len(), 5);
        assert!(!m.code[2].contains("still"));
        assert!(m.code[3].contains("let a"), "code resumes on line 4: {:?}", m.code);
        assert!(m.code[4].contains("let b"));
    }

    #[test]
    fn crlf_lines_do_not_drift_or_leak() {
        let src = "let a = \"HashMap\";\r\n// simlint: allow(D1)\r\nlet b = HashMap::new();\r\nlet c = 3;\r\n";
        let m = model(src);
        assert!(!m.code[0].contains("HashMap"), "string blanked under CRLF");
        assert!(m.is_allowed(2, "D1"), "standalone directive applies to the next line");
        assert!(m.code[2].contains("HashMap"), "code survives on the right line");
        // The `\r` must not leak into the code view: every line stays
        // char-aligned with `str::lines()` of the raw source.
        for (line, raw) in m.code.iter().zip(src.lines()) {
            assert!(!line.contains('\r'));
            assert_eq!(line.chars().count(), raw.chars().count(), "1:1 char mapping");
        }
    }

    #[test]
    fn byte_strings_are_blanked_without_drift() {
        let src = "let a = b\"Instant::now()\";\nlet b = br#\"SystemTime\"#;\nlet c = b'\\xff';\nlet d = 4;";
        let m = model(src);
        assert!(!m.code[0].contains("Instant"), "byte string blanked: {:?}", m.code[0]);
        assert!(!m.code[1].contains("SystemTime"), "raw byte string blanked: {:?}", m.code[1]);
        assert!(!m.code[2].contains("xff"), "byte char blanked: {:?}", m.code[2]);
        assert!(m.code[3].contains("let d"), "line numbers exact");
        for (line, raw) in m.code.iter().zip(src.lines()) {
            assert_eq!(line.chars().count(), raw.chars().count(), "1:1 char mapping");
        }
    }

    #[test]
    fn multiline_string_lines_stay_aligned() {
        let src = "let s = \"first\nHashMap inside\nlast\"; let t = HashMap::new();";
        let m = model(src);
        assert_eq!(m.code.len(), 3);
        assert!(!m.code[1].contains("HashMap"), "string interior blanked");
        assert!(m.code[2].contains("HashMap::new"), "code after the close survives");
    }

    #[test]
    fn allow_trailing_and_standalone() {
        let src = "let a = 1; // simlint: allow(D1)\n// simlint: allow(D2) — next line\nlet b = 2;\nlet c = 3;";
        let m = model(src);
        assert!(m.is_allowed(0, "D1"));
        assert!(m.is_allowed(2, "D2"));
        assert!(!m.is_allowed(3, "D2"));
    }

    #[test]
    fn hotpath_fences() {
        let src = "fn a() {}\n// simlint: hotpath(begin)\nfn b() {}\n// simlint: hotpath(end)\nfn c() {}";
        let m = model(src);
        assert!(!m.hotpath[0]);
        assert!(m.hotpath[2]);
        assert!(!m.hotpath[4]);
    }

    #[test]
    fn cfg_test_regions_brace_tracked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let s = \"}\"; }\n}\nfn after() {}";
        let m = model(src);
        assert!(!m.in_test[0]);
        assert!(m.in_test[3], "inside the test mod");
        assert!(!m.in_test[5], "after the closing brace");
    }

    #[test]
    fn token_boundaries() {
        assert!(find_token("DetHashMap<u64, u32>", "HashMap").is_none());
        assert!(find_token("HashMap::new()", "HashMap").is_some());
        assert!(find_token("std::collections::HashMap<K, V>", "std::collections::HashMap").is_some());
    }
}
