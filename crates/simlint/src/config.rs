//! Linter configuration: built-in rule defaults plus the checked-in
//! `simlint.toml` (allowlisted paths per rule and the findings baseline).
//!
//! The file is parsed by a tiny hand-rolled TOML subset (the build is
//! offline): `[section]` headers, `key = "string"`, `key = true|false`, and
//! `key = ["a", "b", …]` arrays (single- or multi-line). That is all the
//! configuration needs.

use std::collections::BTreeMap;

/// Per-rule configuration.
#[derive(Debug, Clone, Default)]
pub struct RuleCfg {
    /// Repo-relative path prefixes where the rule does not apply (the
    /// sanctioned escape hatch, e.g. perf calibration reading wall clocks).
    pub allow_paths: Vec<String>,
    /// If non-empty, the rule *only* applies to files matching one of these
    /// repo-relative prefixes (e.g. H2 scopes to `simcore::time`).
    pub paths: Vec<String>,
    /// Whether the rule fires inside `#[cfg(test)]` items and files under
    /// `tests/`, `benches/`, `examples/`.
    pub include_tests: bool,
}

/// The linter configuration: per-rule scoping plus the baseline.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Rule id → configuration. (`BTreeMap`: deterministic iteration.)
    pub rules: BTreeMap<String, RuleCfg>,
    /// Tolerated findings, `"RULE:repo/relative/path.rs"` — reported but not
    /// counted against the gate. Drive this to empty.
    pub baseline: Vec<String>,
}

impl Config {
    /// The built-in defaults (rule scoping that is structural, not
    /// repository policy). `simlint.toml` layers policy on top.
    pub fn builtin() -> Config {
        let mut rules = BTreeMap::new();
        rules.insert(
            "D1".to_owned(),
            RuleCfg {
                include_tests: true, // hash-order flakiness bites tests too
                ..RuleCfg::default()
            },
        );
        rules.insert(
            "D2".to_owned(),
            RuleCfg {
                include_tests: true,
                ..RuleCfg::default()
            },
        );
        rules.insert(
            "D3".to_owned(),
            RuleCfg {
                include_tests: false, // tests may seed ad-hoc RNGs directly
                ..RuleCfg::default()
            },
        );
        rules.insert(
            "D4".to_owned(),
            RuleCfg {
                include_tests: true,
                ..RuleCfg::default()
            },
        );
        rules.insert(
            "D5".to_owned(),
            RuleCfg {
                include_tests: false, // tests build throwaway state on purpose
                // Only the simulation crates carry checkpointable state; the
                // bench/tooling crates hold host-side state by design.
                paths: vec![
                    "crates/simcore/src/".to_owned(),
                    "crates/oskernel/src/".to_owned(),
                    "crates/microsvc/src/".to_owned(),
                    "crates/loadgen/src/".to_owned(),
                    "crates/storedb/src/".to_owned(),
                ],
                ..RuleCfg::default()
            },
        );
        rules.insert(
            "D6".to_owned(),
            RuleCfg {
                include_tests: true, // racy captures are racy in tests too
                ..RuleCfg::default()
            },
        );
        rules.insert(
            "H1".to_owned(),
            RuleCfg {
                include_tests: true, // fences are in non-test code anyway
                ..RuleCfg::default()
            },
        );
        rules.insert(
            "H2".to_owned(),
            RuleCfg {
                include_tests: false,
                paths: vec!["crates/simcore/src/time.rs".to_owned()],
                ..RuleCfg::default()
            },
        );
        rules.insert(
            "D7".to_owned(),
            RuleCfg {
                include_tests: false, // tests may derive ad-hoc streams
                ..RuleCfg::default()
            },
        );
        rules.insert(
            "H3".to_owned(),
            RuleCfg {
                include_tests: true, // fences only exist in non-test code
                ..RuleCfg::default()
            },
        );
        rules.insert(
            "S1".to_owned(),
            RuleCfg {
                include_tests: false, // throwaway test types need no plumbing
                ..RuleCfg::default()
            },
        );
        Config {
            rules,
            baseline: Vec::new(),
        }
    }

    /// Builtin defaults merged with a parsed `simlint.toml`.
    pub fn from_toml(toml: &str) -> Config {
        let mut cfg = Config::builtin();
        for (section, key, value) in parse(toml) {
            match (section.as_str(), key.as_str()) {
                ("baseline", "entries") => cfg.baseline = value.into_strings(),
                (s, k) if s.starts_with("rules.") => {
                    let rule = s["rules.".len()..].to_owned();
                    let entry = cfg.rules.entry(rule).or_default();
                    match k {
                        "allow_paths" => entry.allow_paths = value.into_strings(),
                        "paths" => entry.paths = value.into_strings(),
                        "include_tests" => {
                            if let Value::Bool(b) = value {
                                entry.include_tests = b;
                            }
                        }
                        _ => {}
                    }
                }
                _ => {}
            }
        }
        cfg
    }

    /// Rule configuration, falling back to an inert default.
    pub fn rule(&self, id: &str) -> RuleCfg {
        self.rules.get(id).cloned().unwrap_or_default()
    }

    /// Whether a finding `(rule, file)` is tolerated by the baseline.
    pub fn is_baselined(&self, rule: &str, file: &str) -> bool {
        let key = format!("{rule}:{file}");
        self.baseline.iter().any(|e| e == &key)
    }
}

/// A parsed TOML value (the subset the config uses).
#[derive(Debug, Clone)]
pub enum Value {
    Str(String),
    Bool(bool),
    Array(Vec<String>),
}

impl Value {
    fn into_strings(self) -> Vec<String> {
        match self {
            Value::Array(v) => v,
            Value::Str(s) => vec![s],
            Value::Bool(_) => Vec::new(),
        }
    }
}

/// Parses the TOML subset into `(section, key, value)` triples.
fn parse(text: &str) -> Vec<(String, String, Value)> {
    let mut out = Vec::new();
    let mut section = String::new();
    let mut lines = text.lines().peekable();
    while let Some(raw) = lines.next() {
        let line = strip_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_owned();
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim().to_owned();
        let mut rhs = line[eq + 1..].trim().to_owned();
        if rhs.starts_with('[') && !rhs.contains(']') {
            // Multi-line array: accumulate until the closing bracket.
            for cont in lines.by_ref() {
                let cont = strip_comment(cont).trim().to_owned();
                rhs.push(' ');
                rhs.push_str(&cont);
                if cont.contains(']') {
                    break;
                }
            }
        }
        let value = if rhs == "true" {
            Value::Bool(true)
        } else if rhs == "false" {
            Value::Bool(false)
        } else if let Some(inner) = rhs.strip_prefix('[') {
            let inner = inner.strip_suffix(']').unwrap_or(inner);
            Value::Array(
                inner
                    .split(',')
                    .map(|s| s.trim().trim_matches('"').to_owned())
                    .filter(|s| !s.is_empty())
                    .collect(),
            )
        } else {
            Value::Str(rhs.trim_matches('"').to_owned())
        };
        out.push((section.clone(), key, value));
    }
    out
}

fn strip_comment(line: &str) -> &str {
    // Good enough for this config: `#` never appears inside our strings.
    match line.find('#') {
        Some(at) => &line[..at],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_bools() {
        let toml = r#"
# comment
[rules.D2]
allow_paths = ["crates/bench/", "crates/loadgen/examples/"]
include_tests = false

[baseline]
entries = [
  "D1:crates/foo/src/bar.rs",  # tolerated
]
"#;
        let cfg = Config::from_toml(toml);
        assert_eq!(
            cfg.rule("D2").allow_paths,
            vec!["crates/bench/", "crates/loadgen/examples/"]
        );
        assert!(!cfg.rule("D2").include_tests);
        assert!(cfg.is_baselined("D1", "crates/foo/src/bar.rs"));
        assert!(!cfg.is_baselined("D1", "crates/foo/src/baz.rs"));
    }

    #[test]
    fn builtin_scopes_h2_to_time() {
        let cfg = Config::builtin();
        assert_eq!(cfg.rule("H2").paths, vec!["crates/simcore/src/time.rs"]);
        assert!(cfg.rule("D1").include_tests);
        assert!(!cfg.rule("D3").include_tests);
        assert!(
            cfg.rule("D5")
                .paths
                .iter()
                .any(|p| p == "crates/simcore/src/"),
            "D5 scopes to the simulation crates"
        );
    }
}
