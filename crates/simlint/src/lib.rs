//! simlint — in-repo determinism & invariant linter.
//!
//! The simulator's headline numbers rest on bit-exact replay across seeds,
//! `--jobs` fan-out, and refactors. The golden-hash tests enforce that
//! *dynamically*, after a sweep has already run; simlint enforces the
//! underlying discipline *statically*, at review time:
//!
//! * **D1–D5** — determinism hazards (std hash maps in sim state, wall-clock
//!   reads, unlabeled RNG streams, order-sensitive parallel accumulation,
//!   sim state held outside the snapshot registry);
//! * **H1–H2** — hot-path invariants (no allocation inside slab fences, no
//!   truncating casts in simulated-time arithmetic).
//!
//! Three front ends share this library: the `simlint` binary, the
//! `repro lint` subcommand, and the tier-1 integration test
//! (`tests/simlint.rs`) that gates the tree at zero non-baselined findings.

pub mod config;
pub mod rules;
pub mod scan;

use config::Config;
use rules::FileCtx;
use std::fs;
use std::path::{Path, PathBuf};

/// One finding: a rule firing at a specific file:line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`D1` … `H2`).
    pub rule: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Repo-relative path, `/` separators.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// What fired.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
    /// Tolerated by the `simlint.toml` baseline (reported, not gating).
    pub baselined: bool,
}

/// Finding severity. Every current rule denies; the enum leaves room for
/// advisory rules later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Gating: fails the binary / test / CI when not baselined.
    Deny,
    /// Advisory only.
    Warn,
}

impl Severity {
    /// Lowercase label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// The result of linting a tree.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not tolerated by the baseline — the gating set.
    pub fn gating(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.baselined)
    }

    /// Count of gating findings.
    pub fn gating_count(&self) -> usize {
        self.gating().count()
    }
}

/// Walks up from `start` looking for `simlint.toml`; that directory is the
/// workspace root. Falls back to `start` itself.
pub fn find_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("simlint.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}

/// Loads `simlint.toml` from `root` (builtin defaults if absent).
pub fn load_config(root: &Path) -> Config {
    match fs::read_to_string(root.join("simlint.toml")) {
        Ok(text) => Config::from_toml(&text),
        Err(_) => Config::builtin(),
    }
}

/// Directories never scanned, at any depth.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "results", "fixtures"];

/// Collects every `.rs` file under `root` worth linting, sorted for
/// deterministic report order. Scans `crates/*` and the root `src/`/`tests/`
/// trees; skips build output, vendored deps, results, and the linter's own
/// rule fixtures (which are known-bad on purpose).
pub fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "benches", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out);
        }
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Repo-relative path with `/` separators (for findings and baseline keys).
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Whether the file as a whole is test context (outside a crate's `src/`).
fn is_test_path(rel: &str) -> bool {
    rel.split('/').any(|seg| {
        seg == "tests" || seg == "benches" || seg == "examples" || seg.starts_with("bench")
    }) && !rel.contains("/src/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
}

/// Lints one source string as if it lived at `rel` under the repo root.
/// This is the seam the fixture tests use.
pub fn lint_source(rel: &str, source: &str, cfg: &Config) -> Vec<Finding> {
    let model = scan::model(source);
    let ctx = FileCtx {
        rel_path: rel,
        model: &model,
        file_is_test: is_test_path(rel),
    };
    let mut out = Vec::new();
    rules::run_all(&ctx, cfg, &mut out);
    for f in &mut out {
        f.baselined = cfg.is_baselined(f.rule, &f.file);
    }
    out
}

/// Lints the whole workspace under `root`.
pub fn lint_workspace(root: &Path) -> Report {
    let cfg = load_config(root);
    let mut report = Report::default();
    for path in collect_sources(root) {
        let Ok(source) = fs::read_to_string(&path) else {
            continue;
        };
        let rel = rel_path(root, &path);
        report.findings.extend(lint_source(&rel, &source, &cfg));
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}

/// Renders the report as human-readable text.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let tag = if f.baselined { " (baselined)" } else { "" };
        out.push_str(&format!(
            "{}: [{}/{}] {}:{} — {}{}\n    hint: {}\n",
            f.severity.label(),
            f.rule,
            f.severity.label(),
            f.file,
            f.line,
            f.message,
            tag,
            f.hint
        ));
    }
    out.push_str(&format!(
        "simlint: {} file(s) scanned, {} finding(s), {} gating\n",
        report.files_scanned,
        report.findings.len(),
        report.gating_count()
    ));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as JSON (hand-rolled; the crate is dependency-free).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"hint\": \"{}\", \"baselined\": {}}}",
            f.rule,
            f.severity.label(),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message),
            json_escape(f.hint),
            f.baselined
        ));
    }
    out.push_str(&format!(
        "\n  ],\n  \"files_scanned\": {},\n  \"total\": {},\n  \"gating\": {}\n}}\n",
        report.files_scanned,
        report.findings.len(),
        report.gating_count()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_flags_and_allows_d1() {
        let cfg = Config::builtin();
        let bad = "use std::collections::HashMap;\nfn f() { let m: std::collections::HashMap<u32, u32> = Default::default(); let _ = m; }\n";
        let findings = lint_source("crates/x/src/lib.rs", bad, &cfg);
        assert_eq!(findings.iter().filter(|f| f.rule == "D1").count(), 2);
        assert_eq!(findings[0].line, 1);

        let ok = "use std::collections::HashMap; // simlint: allow(D1)\n";
        let findings = lint_source("crates/x/src/lib.rs", ok, &cfg);
        assert!(findings.is_empty());
    }

    #[test]
    fn baseline_marks_but_does_not_gate() {
        let cfg = Config::from_toml(
            "[baseline]\nentries = [\"D1:crates/x/src/lib.rs\"]\n",
        );
        let findings = lint_source(
            "crates/x/src/lib.rs",
            "use std::collections::HashMap;\n",
            &cfg,
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].baselined);
        let report = Report {
            findings,
            files_scanned: 1,
        };
        assert_eq!(report.gating_count(), 0);
    }

    #[test]
    fn json_escapes_quotes() {
        let report = Report {
            findings: vec![Finding {
                rule: "D2",
                severity: Severity::Deny,
                file: "a\"b.rs".to_owned(),
                line: 3,
                message: "x".to_owned(),
                hint: "",
                baselined: false,
            }],
            files_scanned: 1,
        };
        let json = render_json(&report);
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("\"gating\": 1"));
    }
}
