//! simlint — in-repo determinism & invariant linter.
//!
//! The simulator's headline numbers rest on bit-exact replay across seeds,
//! `--jobs` fan-out, and refactors. The golden-hash tests enforce that
//! *dynamically*, after a sweep has already run; simlint enforces the
//! underlying discipline *statically*, at review time:
//!
//! * **D1–D7** — determinism hazards (std hash maps in sim state, wall-clock
//!   reads, unlabeled RNG streams, order-sensitive parallel accumulation,
//!   sim state held outside the snapshot registry, racy shard-worker
//!   captures, RNG stream-label collisions);
//! * **H1–H3** — hot-path invariants (no allocation inside slab fences, no
//!   truncating casts in simulated-time arithmetic, no allocation reachable
//!   through calls leaving a fence);
//! * **S1** — snapshot completeness (every field of a snapshotting type is
//!   plumbed through `snap_save`/`snap_restore`).
//!
//! Linting runs in two passes: pass 1 applies the per-file rules to each
//! [`scan::SourceModel`]; pass 2 builds a repo-wide [`index::RepoIndex`]
//! (structs, fns, calls, RNG sites) and runs the interprocedural rules
//! (S1, H3, D7) against it.
//!
//! Three front ends share this library: the `simlint` binary, the
//! `repro lint` subcommand, and the tier-1 integration test
//! (`tests/simlint.rs`) that gates the tree at zero non-baselined findings.

pub mod callgraph;
pub mod config;
pub mod index;
pub mod rules;
pub mod scan;

use config::Config;
use index::{RepoIndex, SourceFile};
use rules::{FileCtx, RngStreamEntry};
use std::fs;
use std::path::{Path, PathBuf};

/// One finding: a rule firing at a specific file:line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`D1` … `H2`).
    pub rule: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Repo-relative path, `/` separators.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// What fired.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
    /// Tolerated by the `simlint.toml` baseline (reported, not gating).
    pub baselined: bool,
}

/// Finding severity. Every current rule denies; the enum leaves room for
/// advisory rules later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Gating: fails the binary / test / CI when not baselined.
    Deny,
    /// Advisory only.
    Warn,
}

impl Severity {
    /// Lowercase label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// A baseline entry that no longer matches any finding.
#[derive(Debug, Clone)]
pub struct StaleBaseline {
    /// The entry text, `"RULE:repo/relative/path.rs"`.
    pub entry: String,
    /// 1-indexed line of the entry in `simlint.toml`, when locatable.
    pub toml_line: Option<usize>,
}

/// The result of linting a tree.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// The RNG stream-label registry D7 collected (literal labels and every
    /// site deriving them), in first-derivation order.
    pub rng_streams: Vec<RngStreamEntry>,
    /// Baseline entries that matched no finding — the debt was paid; the
    /// entry must be deleted so it cannot mask a future regression.
    pub stale_baseline: Vec<StaleBaseline>,
}

impl Report {
    /// Findings not tolerated by the baseline — the gating set.
    pub fn gating(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.baselined)
    }

    /// Count of gating findings.
    pub fn gating_count(&self) -> usize {
        self.gating().count()
    }
}

/// Walks up from `start` looking for `simlint.toml`; that directory is the
/// workspace root. Falls back to `start` itself.
pub fn find_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("simlint.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}

/// Loads `simlint.toml` from `root` (builtin defaults if absent).
pub fn load_config(root: &Path) -> Config {
    match fs::read_to_string(root.join("simlint.toml")) {
        Ok(text) => Config::from_toml(&text),
        Err(_) => Config::builtin(),
    }
}

/// Directories never scanned, at any depth.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "results", "fixtures"];

/// Collects every `.rs` file under `root` worth linting, sorted for
/// deterministic report order. Scans `crates/*` and the root `src/`/`tests/`
/// trees; skips build output, vendored deps, results, and the linter's own
/// rule fixtures (which are known-bad on purpose).
pub fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "benches", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out);
        }
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Repo-relative path with `/` separators (for findings and baseline keys).
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Whether the file as a whole is test context (outside a crate's `src/`).
fn is_test_path(rel: &str) -> bool {
    rel.split('/').any(|seg| {
        seg == "tests" || seg == "benches" || seg == "examples" || seg.starts_with("bench")
    }) && !rel.contains("/src/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
}

/// Lints one source string as if it lived at `rel` under the repo root,
/// with the **per-file** rules only. This is the seam the original fixture
/// tests use; the interprocedural rules need [`lint_sources`].
pub fn lint_source(rel: &str, source: &str, cfg: &Config) -> Vec<Finding> {
    let model = scan::model(source);
    let ctx = FileCtx {
        rel_path: rel,
        model: &model,
        file_is_test: is_test_path(rel),
    };
    let mut out = Vec::new();
    rules::run_all(&ctx, cfg, &mut out);
    for f in &mut out {
        f.baselined = cfg.is_baselined(f.rule, &f.file);
    }
    out
}

/// Lints a set of in-memory sources as one tree: both passes, full report.
/// This is the seam the interprocedural fixture tests use (D7's collision
/// fixture needs two modules linted together).
pub fn lint_sources(sources: &[(&str, &str)], cfg: &Config) -> Report {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(rel, src)| SourceFile::new(rel, src, is_test_path(rel)))
        .collect();
    lint_files(files, cfg, None)
}

/// Lints the whole workspace under `root`.
pub fn lint_workspace(root: &Path) -> Report {
    let cfg = load_config(root);
    let toml = fs::read_to_string(root.join("simlint.toml")).ok();
    let mut files = Vec::new();
    for path in collect_sources(root) {
        let Ok(source) = fs::read_to_string(&path) else {
            continue;
        };
        let rel = rel_path(root, &path);
        let is_test = is_test_path(&rel);
        files.push(SourceFile::new(&rel, &source, is_test));
    }
    lint_files(files, &cfg, toml.as_deref())
}

/// The two-pass core shared by [`lint_sources`] and [`lint_workspace`].
fn lint_files(files: Vec<SourceFile>, cfg: &Config, toml: Option<&str>) -> Report {
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    // Pass 1: per-file rules over each source model.
    for file in &files {
        let ctx = FileCtx {
            rel_path: &file.rel,
            model: &file.model,
            file_is_test: file.is_test_file,
        };
        rules::run_all(&ctx, cfg, &mut report.findings);
    }
    // Pass 2: repo-wide index, interprocedural rules.
    let idx = RepoIndex::build(&files);
    report.rng_streams = rules::run_index_rules(&files, &idx, cfg, &mut report.findings);
    for f in &mut report.findings {
        f.baselined = cfg.is_baselined(f.rule, &f.file);
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report.stale_baseline = stale_baseline_entries(cfg, &report.findings, toml);
    report
}

/// Baseline entries that matched no finding, each located in the config
/// text when available. Stale entries gate: an entry whose finding was
/// fixed must be deleted, or it would silently tolerate a *new* finding of
/// the same rule in the same file.
fn stale_baseline_entries(
    cfg: &Config,
    findings: &[Finding],
    toml: Option<&str>,
) -> Vec<StaleBaseline> {
    cfg.baseline
        .iter()
        .filter(|entry| {
            !findings
                .iter()
                .any(|f| format!("{}:{}", f.rule, f.file) == **entry)
        })
        .map(|entry| StaleBaseline {
            entry: entry.clone(),
            toml_line: toml.and_then(|text| {
                text.lines()
                    .position(|line| line.contains(entry.as_str()))
                    .map(|i| i + 1)
            }),
        })
        .collect()
}

/// Renders the report as human-readable text.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let tag = if f.baselined { " (baselined)" } else { "" };
        out.push_str(&format!(
            "{}: [{}/{}] {}:{} — {}{}\n    hint: {}\n",
            f.severity.label(),
            f.rule,
            f.severity.label(),
            f.file,
            f.line,
            f.message,
            tag,
            f.hint
        ));
    }
    for stale in &report.stale_baseline {
        let at = match stale.toml_line {
            Some(line) => format!("simlint.toml:{line}"),
            None => "simlint.toml".to_owned(),
        };
        out.push_str(&format!(
            "stale baseline: `{}` ({at}) matches no finding — delete the entry\n",
            stale.entry
        ));
    }
    out.push_str(&format!(
        "simlint: {} file(s) scanned, {} finding(s), {} gating, {} stale baseline entr{}\n",
        report.files_scanned,
        report.findings.len(),
        report.gating_count(),
        report.stale_baseline.len(),
        if report.stale_baseline.len() == 1 { "y" } else { "ies" }
    ));
    out
}

/// Renders the report as GitHub Actions workflow commands, one annotation
/// per gating finding (`::error file=…,line=…::…`), so findings surface
/// inline on the PR diff. Baselined findings become `::warning`; stale
/// baseline entries annotate `simlint.toml` itself.
pub fn render_github(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let kind = if f.baselined { "warning" } else { "error" };
        out.push_str(&format!(
            "::{kind} file={},line={},title=simlint {}::{}{}\n",
            f.file,
            f.line,
            f.rule,
            github_escape_data(&f.message),
            if f.hint.is_empty() {
                String::new()
            } else {
                format!(" (hint: {})", github_escape_data(f.hint))
            },
        ));
    }
    for stale in &report.stale_baseline {
        out.push_str(&format!(
            "::error file=simlint.toml{},title=simlint stale baseline::baseline entry `{}` matches no finding — delete it\n",
            match stale.toml_line {
                Some(line) => format!(",line={line}"),
                None => String::new(),
            },
            github_escape_data(&stale.entry),
        ));
    }
    out
}

/// Escapes the data part of a GitHub workflow command (`%`, CR, LF).
fn github_escape_data(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as JSON (hand-rolled; the crate is dependency-free).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"hint\": \"{}\", \"baselined\": {}}}",
            f.rule,
            f.severity.label(),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message),
            json_escape(f.hint),
            f.baselined
        ));
    }
    out.push_str("\n  ],\n  \"rng_streams\": [");
    for (i, entry) in report.rng_streams.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"label\": \"{}\", \"sites\": [",
            json_escape(&entry.label)
        ));
        for (j, (file, line)) in entry.sites.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"file\": \"{}\", \"line\": {}}}",
                json_escape(file),
                line
            ));
        }
        out.push_str("]}");
    }
    out.push_str("\n  ],\n  \"stale_baseline\": [");
    for (i, stale) in report.stale_baseline.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"entry\": \"{}\", \"toml_line\": {}}}",
            json_escape(&stale.entry),
            match stale.toml_line {
                Some(line) => line.to_string(),
                None => "null".to_owned(),
            }
        ));
    }
    out.push_str(&format!(
        "\n  ],\n  \"files_scanned\": {},\n  \"total\": {},\n  \"gating\": {}\n}}\n",
        report.files_scanned,
        report.findings.len(),
        report.gating_count()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_flags_and_allows_d1() {
        let cfg = Config::builtin();
        let bad = "use std::collections::HashMap;\nfn f() { let m: std::collections::HashMap<u32, u32> = Default::default(); let _ = m; }\n";
        let findings = lint_source("crates/x/src/lib.rs", bad, &cfg);
        assert_eq!(findings.iter().filter(|f| f.rule == "D1").count(), 2);
        assert_eq!(findings[0].line, 1);

        let ok = "use std::collections::HashMap; // simlint: allow(D1)\n";
        let findings = lint_source("crates/x/src/lib.rs", ok, &cfg);
        assert!(findings.is_empty());
    }

    #[test]
    fn baseline_marks_but_does_not_gate() {
        let cfg = Config::from_toml(
            "[baseline]\nentries = [\"D1:crates/x/src/lib.rs\"]\n",
        );
        let findings = lint_source(
            "crates/x/src/lib.rs",
            "use std::collections::HashMap;\n",
            &cfg,
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].baselined);
        let report = Report {
            findings,
            files_scanned: 1,
            ..Report::default()
        };
        assert_eq!(report.gating_count(), 0);
    }

    #[test]
    fn json_escapes_quotes() {
        let report = Report {
            findings: vec![Finding {
                rule: "D2",
                severity: Severity::Deny,
                file: "a\"b.rs".to_owned(),
                line: 3,
                message: "x".to_owned(),
                hint: "",
                baselined: false,
            }],
            files_scanned: 1,
            ..Report::default()
        };
        let json = render_json(&report);
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("\"gating\": 1"));
        assert!(json.contains("\"rng_streams\": ["));
        assert!(json.contains("\"stale_baseline\": ["));
    }

    #[test]
    fn github_format_annotates_findings_and_stale_entries() {
        let report = Report {
            findings: vec![Finding {
                rule: "H1",
                severity: Severity::Deny,
                file: "crates/x/src/lib.rs".to_owned(),
                line: 7,
                message: "100% bad".to_owned(),
                hint: "fix it",
                baselined: false,
            }],
            files_scanned: 1,
            stale_baseline: vec![StaleBaseline {
                entry: "D4:crates/y/src/lib.rs".to_owned(),
                toml_line: Some(12),
            }],
            ..Report::default()
        };
        let gh = render_github(&report);
        assert!(
            gh.contains("::error file=crates/x/src/lib.rs,line=7,title=simlint H1::100%25 bad"),
            "workflow command with %-escaped message: {gh}"
        );
        assert!(
            gh.contains("::error file=simlint.toml,line=12,title=simlint stale baseline::baseline entry `D4:crates/y/src/lib.rs`"),
            "stale entry annotated at its toml line: {gh}"
        );
    }

    #[test]
    fn stale_baseline_entries_are_located_in_toml() {
        let toml = "[baseline]\nentries = [\n  \"D4:crates/live/src/a.rs\",\n  \"D4:crates/gone/src/b.rs\",\n]\n";
        let cfg = Config::from_toml(toml);
        let findings = vec![Finding {
            rule: "D4",
            severity: Severity::Deny,
            file: "crates/live/src/a.rs".to_owned(),
            line: 1,
            message: String::new(),
            hint: "",
            baselined: true,
        }];
        let stale = stale_baseline_entries(&cfg, &findings, Some(toml));
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].entry, "D4:crates/gone/src/b.rs");
        assert_eq!(stale[0].toml_line, Some(4));
    }

    #[test]
    fn lint_sources_runs_interprocedural_pass() {
        let cfg = Config::builtin();
        let src = "struct S { a: u64 }\nimpl S {\n    fn snap_save(&self) {}\n    fn snap_restore(&mut self) {}\n}\n";
        let report = lint_sources(&[("crates/x/src/lib.rs", src)], &cfg);
        assert!(
            report.findings.iter().any(|f| f.rule == "S1" && f.line == 1),
            "field `a` unplumbed: {:?}",
            report.findings
        );
    }
}
