//! The rule catalog.
//!
//! | rule | class | what it catches |
//! |------|-------|-----------------|
//! | D1 | determinism | `std::collections::HashMap`/`HashSet` in sim state: SipHash's per-instance seeds make iteration order *and capacity* (hence reported footprints) vary run to run |
//! | D2 | determinism | wall-clock reads (`Instant::now`, `SystemTime`) outside the perf-calibration allowlist: simulations must only read `SimTime` |
//! | D3 | determinism | ad-hoc RNG construction (`Rng::seed_from`) or positional forking (`rng.fork()`) bypassing the labeled-stream API (`RngFactory::stream`/`substream`): unlabeled streams shift when a new consumer appears |
//! | D4 | determinism | compound float accumulation (`+=` on a captured binding) inside a `par::map` closure: cross-worker accumulation order is nondeterministic |
//! | D5 | determinism | sim-state type (`Rng`, `Calendar`, running statistics) held in a sim-crate file with no snapshot plumbing: checkpoint/resume silently loses that state |
//! | D6 | determinism | compound mutation of a captured binding inside a `spawn(…)` closure: shard workers must exchange state through the mailbox/merge API, never by racing on shared captures |
//! | D7 | determinism | RNG stream labels that are not string literals, or the same literal label derived from two modules: shared labels silently correlate streams that look independent |
//! | H1 | hot path | allocation-prone calls (`Vec::new`, `clone`, `format!`, …) inside a `// simlint: hotpath(begin/end)` fence: the slab request path must not allocate in steady state |
//! | H2 | hot path | `as` integer casts in `simcore::time` arithmetic: truncation silently wraps simulated nanoseconds; use checked/asserted conversions |
//! | H3 | hot path | calls from inside an H1 fence whose callee (transitively, bounded depth) contains allocation-prone lines: the fence is only as good as what it calls |
//! | S1 | snapshot | a field of a type with `snap_save`/`snap_restore` plumbing that the save body never writes or the restore body never reads: "added a field, forgot the plumbing" caught at lint time instead of by the runtime differential battery |
//!
//! D1–D6, H1–H2 are per-file rules over one [`SourceModel`]; D7, H3, and S1
//! are **interprocedural** — they run in a second pass against the
//! repo-wide [`crate::index::RepoIndex`] built over every scanned file.
//!
//! Every rule is suppressible per line with `// simlint: allow(<rule>)` and
//! per file via `simlint.toml` (`allow_paths`, or a `[baseline]` entry —
//! D-rules are unbaselineable by tier-1 policy).

use crate::config::RuleCfg;
use crate::scan::{find_token, SourceModel};
use crate::{Finding, Severity};

/// Static description of one rule, for `--explain`-style output and docs.
pub struct RuleInfo {
    /// Rule id (`D1` … `H2`).
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// The fix hint attached to findings.
    pub hint: &'static str,
}

/// The catalog, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D1",
        summary: "std HashMap/HashSet in simulation state (iteration order and capacity are per-run random)",
        hint: "use simcore::detmap::{DetHashMap, DetHashSet}, a BTreeMap, or sorted iteration",
    },
    RuleInfo {
        id: "D2",
        summary: "wall-clock read outside the perf-calibration allowlist",
        hint: "simulations read SimTime only; host timing belongs in crates/bench (see simlint.toml allow_paths)",
    },
    RuleInfo {
        id: "D3",
        summary: "RNG constructed or forked outside the labeled-stream API",
        hint: "derive generators via RngFactory::stream(label) / substream(label, i) so streams stay partitionable",
    },
    RuleInfo {
        id: "D4",
        summary: "order-sensitive accumulation inside a par::map closure",
        hint: "return per-item values and reduce the ordered result vector on the caller's thread",
    },
    RuleInfo {
        id: "D5",
        summary: "sim-state type held in a file with no snapshot plumbing (checkpoint/resume would lose it)",
        hint: "give the owning struct snap_save/snap_restore and wire it into its parent's snapshot (see DESIGN.md \"Snapshot & branch\"), or waive derived state with simlint: allow(D5)",
    },
    RuleInfo {
        id: "D6",
        summary: "shared mutable state reached from a spawn closure (bypasses the shard mailbox/merge API)",
        hint: "send cross-shard effects as mailbox messages or return per-worker values and merge them in (time, shard, seq) order on the driver thread",
    },
    RuleInfo {
        id: "D7",
        summary: "RNG stream label is not a unique string literal (shared labels silently correlate \"independent\" streams)",
        hint: "label every stream with a distinct string literal; derive families with substream(label, index)",
    },
    RuleInfo {
        id: "H1",
        summary: "allocation-prone call inside a hotpath fence",
        hint: "preallocate, reuse a scratch buffer/slab slot, or move the allocation out of the fence",
    },
    RuleInfo {
        id: "H2",
        summary: "`as` integer cast in simulated-time arithmetic",
        hint: "use checked_*/try_into, or assert the range and annotate with simlint: allow(H2)",
    },
    RuleInfo {
        id: "H3",
        summary: "call from a hotpath fence reaches an allocation-prone line in an unfenced callee",
        hint: "fence the callee (H1 then checks it line by line), remove the allocation, or waive the call site with simlint: allow(H3)",
    },
    RuleInfo {
        id: "S1",
        summary: "field of a snapshotting type is missing from snap_save/snap_restore (checkpoint/resume silently loses it)",
        hint: "plumb the field through snap_save and snap_restore, or waive config/derived fields with simlint: allow(S1) and a reason",
    },
];

/// Looks up the hint for `rule`.
pub fn hint_for(rule: &str) -> &'static str {
    RULES
        .iter()
        .find(|r| r.id == rule)
        .map(|r| r.hint)
        .unwrap_or("")
}

/// Context for linting one file.
pub struct FileCtx<'a> {
    /// Repo-relative path with `/` separators.
    pub rel_path: &'a str,
    /// The per-line source model.
    pub model: &'a SourceModel,
    /// Whole file is test context (under `tests/`, `benches/`, `examples/`).
    pub file_is_test: bool,
}

impl FileCtx<'_> {
    fn line_is_test(&self, idx: usize) -> bool {
        self.file_is_test || self.model.in_test.get(idx).copied().unwrap_or(false)
    }
}

fn path_matches(path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p.as_str()))
}

/// True when `rule` applies to this file at all (paths/allow_paths scoping).
fn rule_in_scope(cfg: &RuleCfg, path: &str) -> bool {
    if !cfg.paths.is_empty() && !path_matches(path, &cfg.paths) {
        return false;
    }
    !path_matches(path, &cfg.allow_paths)
}

fn push(
    out: &mut Vec<Finding>,
    ctx: &FileCtx,
    rule: &'static str,
    line_idx: usize,
    message: String,
) {
    out.push(Finding {
        rule,
        severity: Severity::Deny,
        file: ctx.rel_path.to_owned(),
        line: line_idx + 1,
        message,
        hint: hint_for(rule),
        baselined: false,
    });
}

/// Runs one rule: iterates lines in scope, skipping allowed/test lines as
/// configured, and calls `check` to produce a message for flagged lines.
fn per_line_rule(
    ctx: &FileCtx,
    cfg: &RuleCfg,
    rule: &'static str,
    out: &mut Vec<Finding>,
    mut check: impl FnMut(&str) -> Option<String>,
) {
    if !rule_in_scope(cfg, ctx.rel_path) {
        return;
    }
    for (idx, line) in ctx.model.code.iter().enumerate() {
        if !cfg.include_tests && ctx.line_is_test(idx) {
            continue;
        }
        if ctx.model.is_allowed(idx, rule) {
            continue;
        }
        if let Some(message) = check(line) {
            push(out, ctx, rule, idx, message);
        }
    }
}

/// D1: std `HashMap`/`HashSet` (fully-qualified uses and `use` imports).
pub fn d1_std_hashmap(ctx: &FileCtx, cfg: &RuleCfg, out: &mut Vec<Finding>) {
    per_line_rule(ctx, cfg, "D1", out, |line| {
        for name in ["HashMap", "HashSet"] {
            let qualified = format!("std::collections::{name}");
            if find_token(line, &qualified).is_some() {
                return Some(format!("{qualified} in simulation code"));
            }
            // `use std::collections::{BTreeMap, HashMap};` style imports.
            let trimmed = line.trim_start();
            if (trimmed.starts_with("use std::collections::")
                || trimmed.starts_with("pub use std::collections::"))
                && find_token(line, name).is_some()
            {
                return Some(format!("std::collections::{name} imported here"));
            }
        }
        None
    });
}

/// D2: wall-clock reads.
pub fn d2_wall_clock(ctx: &FileCtx, cfg: &RuleCfg, out: &mut Vec<Finding>) {
    per_line_rule(ctx, cfg, "D2", out, |line| {
        for needle in [
            "Instant::now",
            "SystemTime::now",
            "std::time::Instant",
            "std::time::SystemTime",
        ] {
            if find_token(line, needle).is_some() {
                return Some(format!("wall-clock read `{needle}`"));
            }
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("use std::time::")
            && (find_token(line, "Instant").is_some() || find_token(line, "SystemTime").is_some())
        {
            return Some("wall-clock type imported here".to_owned());
        }
        None
    });
}

/// D3: direct RNG seeding — or unlabeled forking — outside the
/// labeled-stream API.
pub fn d3_unlabeled_rng(ctx: &FileCtx, cfg: &RuleCfg, out: &mut Vec<Finding>) {
    per_line_rule(ctx, cfg, "D3", out, |line| {
        if let Some(at) = find_token(line, "seed_from") {
            let rest = line[at + "seed_from".len()..].trim_start();
            // A call or a definition; definitions live in the allowlisted
            // rng.rs, so anything reaching here is a bypass.
            if rest.starts_with('(') {
                return Some("RNG seeded directly (bypasses labeled streams)".to_owned());
            }
        }
        // `rng.fork()` derives a child whose identity is positional: insert
        // one more fork upstream and every later child shifts. Generative
        // samplers (the chaos plan space) must use substream(label, index)
        // so each draw is replayable from its coordinates alone.
        if let Some(at) = find_token(line, "fork") {
            let rest = line[at + "fork".len()..].trim_start();
            if rest.starts_with('(') && line[..at].ends_with('.') {
                return Some(
                    "RNG forked positionally (unlabeled child stream; use substream(label, index))"
                        .to_owned(),
                );
            }
        }
        None
    });
}

/// D4: compound accumulation into a captured binding inside `par::map`.
///
/// The scanner brace-matches each `par::map(…)` call (multi-line), collects
/// every identifier bound *inside* the call region (`let` patterns, closure
/// parameters, `for` loops), then flags compound assignments whose base
/// identifier is not one of them — i.e. accumulation into state captured
/// from outside the parallel boundary, where completion order is
/// nondeterministic.
pub fn d4_parallel_accumulation(ctx: &FileCtx, cfg: &RuleCfg, out: &mut Vec<Finding>) {
    captured_accumulation(ctx, cfg, "D4", out, |line| find_token(line, "par::map"), |base, op| {
        format!("`{base} {op} …` accumulates into a binding captured across the par::map boundary")
    });
}

/// D6: compound mutation of a captured binding inside a `spawn(…)` closure.
///
/// The cross-shard analog of D4. Shard workers run cells concurrently; the
/// only sanctioned channels between them are the per-window mailboxes
/// (messages merged in `(time, shard, seq)` order at the barrier) and the
/// driver-thread reduction after `join`. A worker closure that compound-
/// assigns into state captured from outside the `spawn(…)` region is shared
/// mutable state on a racy path — the merge order, and hence the run hash,
/// would depend on thread scheduling.
pub fn d6_shard_worker_capture(ctx: &FileCtx, cfg: &RuleCfg, out: &mut Vec<Finding>) {
    captured_accumulation(
        ctx,
        cfg,
        "D6",
        out,
        |line| {
            let at = find_token(line, "spawn")?;
            let rest = line[at + "spawn".len()..].trim_start();
            rest.starts_with('(').then_some(at)
        },
        |base, op| {
            format!(
                "`{base} {op} …` mutates shared state from a spawn closure (bypasses the shard mailbox/merge API)"
            )
        },
    );
}

/// Shared scanner behind D4/D6: brace-matches the call region starting at
/// the token located by `trigger`, collects bindings made inside it, and
/// flags compound assignments to anything captured from outside.
fn captured_accumulation(
    ctx: &FileCtx,
    cfg: &RuleCfg,
    rule: &'static str,
    out: &mut Vec<Finding>,
    trigger: impl Fn(&str) -> Option<usize>,
    describe: impl Fn(&str, &str) -> String,
) {
    if !rule_in_scope(cfg, ctx.rel_path) {
        return;
    }
    let code = &ctx.model.code;
    for start in 0..code.len() {
        let Some(call_at) = trigger(&code[start]) else {
            continue;
        };
        // Find the opening paren after `par::map` and brace-match to its close.
        let open = match code[start][call_at..].find('(') {
            Some(rel) => call_at + rel,
            None => continue,
        };
        let mut depth = 0i32;
        let mut region: Vec<(usize, String)> = Vec::new(); // (line idx, code)
        let mut done = false;
        for (idx, line) in code.iter().enumerate().skip(start) {
            let slice: &str = if idx == start { &line[open..] } else { line };
            let mut cut = slice.len();
            for (pos, c) in slice.char_indices() {
                match c {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => {
                        depth -= 1;
                        if depth == 0 {
                            cut = pos;
                            done = true;
                        }
                    }
                    _ => {}
                }
                if done {
                    break;
                }
            }
            region.push((idx, slice[..cut].to_owned()));
            if done {
                break;
            }
        }
        // Identifiers bound inside the region.
        let mut bound: Vec<String> = Vec::new();
        for (_, line) in &region {
            collect_bindings(line, &mut bound);
        }
        for (idx, line) in &region {
            if !cfg.include_tests && ctx.line_is_test(*idx) {
                continue;
            }
            if ctx.model.is_allowed(*idx, rule) {
                continue;
            }
            for op in ["+=", "-=", "*=", "/="] {
                let mut from = 0;
                while let Some(rel) = line[from..].find(op) {
                    let at = from + rel;
                    from = at + op.len();
                    // `x += 1` vs `x <= 1`/`=>`: the char before must not be
                    // part of another operator.
                    if at > 0 && matches!(&line[at - 1..at], "<" | ">" | "=" | "!" | "+" | "-") {
                        continue;
                    }
                    if let Some(base) = assign_base(&line[..at]) {
                        if !bound.iter().any(|b| b == &base) {
                            push(out, ctx, rule, *idx, describe(&base, op));
                        }
                    }
                }
            }
        }
    }
}

/// Collects identifiers bound by `let` patterns, closure params, and `for`.
fn collect_bindings(line: &str, out: &mut Vec<String>) {
    let idents = |s: &str, out: &mut Vec<String>| {
        let mut cur = String::new();
        for c in s.chars() {
            if c.is_ascii_alphanumeric() || c == '_' {
                cur.push(c);
            } else if !cur.is_empty() {
                if !cur.chars().next().unwrap_or('0').is_ascii_digit() {
                    out.push(std::mem::take(&mut cur));
                } else {
                    cur.clear();
                }
            }
        }
        if !cur.is_empty() && !cur.chars().next().unwrap_or('0').is_ascii_digit() {
            out.push(cur);
        }
    };
    // `let <pattern> =`: everything between `let` and `=` (or `in` for
    // `for`-loops) binds identifiers; over-collecting (types in annotations)
    // only makes the rule more permissive, never noisier.
    let mut from = 0;
    while let Some(rel) = line[from..].find("let ") {
        let at = from + rel;
        from = at + 4;
        let rest = &line[at + 4..];
        let end = rest.find('=').unwrap_or(rest.len());
        idents(&rest[..end], out);
    }
    let mut from = 0;
    while let Some(rel) = line[from..].find("for ") {
        let at = from + rel;
        from = at + 4;
        let rest = &line[at + 4..];
        let end = rest.find(" in ").unwrap_or(rest.len().min(40));
        idents(&rest[..end], out);
    }
    // Closure parameter lists: `|a, (i, b)|` — between the first unescaped
    // pair of pipes if the line contains a closure intro.
    if let Some(p1) = line.find('|') {
        if let Some(p2) = line[p1 + 1..].find('|') {
            idents(&line[p1 + 1..p1 + 1 + p2], out);
        }
    }
}

/// The base identifier of the assignment target ending at `prefix`'s end:
/// `stats.rows += 1` → `stats`; `totals[i] += x` → `totals`.
fn assign_base(prefix: &str) -> Option<String> {
    let trimmed = prefix.trim_end();
    // Walk back over one postfix chain: ident(.ident | [..])*
    let bytes = trimmed.as_bytes();
    let mut i = trimmed.len();
    let mut bracket = 0i32;
    while i > 0 {
        let c = bytes[i - 1] as char;
        if c == ']' {
            bracket += 1;
            i -= 1;
        } else if c == '[' {
            bracket -= 1;
            if bracket < 0 {
                return None;
            }
            i -= 1;
        } else if bracket > 0 || c.is_ascii_alphanumeric() || c == '_' || c == '.' {
            i -= 1;
        } else {
            break;
        }
    }
    let chain = &trimmed[i..];
    let base: String = chain
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if base.is_empty() || base.chars().next().unwrap_or('0').is_ascii_digit() {
        None
    } else {
        Some(base)
    }
}

/// D5: sim-state types held in a file with no snapshot plumbing.
///
/// The checkpoint layer (`simcore::snap`) can only restore state that some
/// `snap_save`/`snap_restore` pair covers. A file that *owns* live sim state
/// — an RNG stream, the calendar, a running statistic — but never touches
/// the snapshot registry is state a checkpoint silently loses. Heuristic:
/// if any code line mentions `SnapWriter`/`SnapReader` or `snap_save`, the
/// file participates in the registry and its coverage is proven dynamically
/// by the differential battery (`tests/snapshot.rs`); otherwise every field
/// of a known stateful type is flagged.
pub fn d5_unsnapshotted_state(ctx: &FileCtx, cfg: &RuleCfg, out: &mut Vec<Finding>) {
    const STATE_TYPES: &[&str] = &[
        "Rng",
        "Calendar",
        "TimeSeries",
        "TimeWeighted",
        "RateMeter",
        "Welford",
        "LogHistogram",
    ];
    if !rule_in_scope(cfg, ctx.rel_path) {
        return;
    }
    let participates = ctx.model.code.iter().any(|line| {
        find_token(line, "SnapWriter").is_some()
            || find_token(line, "SnapReader").is_some()
            || find_token(line, "snap_save").is_some()
    });
    if participates {
        return;
    }
    per_line_rule(ctx, cfg, "D5", out, |line| {
        if line.contains("fn ") || line.contains("->") {
            return None; // signatures borrow state; only fields *hold* it
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
            return None; // imports name the type without holding it
        }
        for ty in STATE_TYPES {
            let Some(at) = find_token(line, ty) else {
                continue;
            };
            if line[at + ty.len()..].starts_with("::") {
                continue; // path expression (e.g. a constructor), not a type
            }
            let before = line[..at].trim_end();
            if before.ends_with(':') || before.ends_with('<') {
                return Some(format!(
                    "sim-state `{ty}` held in a file with no snapshot plumbing"
                ));
            }
        }
        None
    });
}

/// H1: allocation-prone calls inside hotpath fences.
pub fn h1_hotpath_alloc(ctx: &FileCtx, cfg: &RuleCfg, out: &mut Vec<Finding>) {
    if !rule_in_scope(cfg, ctx.rel_path) {
        return;
    }
    const ALLOC: &[&str] = &[
        "Vec::new",
        "vec!",
        "String::new",
        "String::from",
        "format!",
        "Box::new",
        "HashMap::new",
        "BTreeMap::new",
        ".to_string(",
        ".to_owned(",
        ".to_vec(",
        ".clone(",
        ".collect(",
    ];
    for (idx, line) in ctx.model.code.iter().enumerate() {
        if !ctx.model.hotpath.get(idx).copied().unwrap_or(false) {
            continue;
        }
        if !cfg.include_tests && ctx.line_is_test(idx) {
            continue;
        }
        if ctx.model.is_allowed(idx, "H1") {
            continue;
        }
        for needle in ALLOC {
            let hit = if needle.starts_with('.') {
                line.contains(needle)
            } else {
                find_token(line, needle).is_some()
            };
            if hit {
                push(
                    out,
                    ctx,
                    "H1",
                    idx,
                    format!("allocation-prone `{needle}` inside a hotpath fence"),
                );
                break; // one finding per line is enough
            }
        }
    }
}

/// H2: `as <integer>` casts in scoped files (simulated-time arithmetic).
pub fn h2_time_casts(ctx: &FileCtx, cfg: &RuleCfg, out: &mut Vec<Finding>) {
    const INT_TYPES: &[&str] = &[
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    ];
    per_line_rule(ctx, cfg, "H2", out, |line| {
        let mut from = 0;
        while let Some(rel) = line[from..].find(" as ") {
            let at = from + rel;
            from = at + 4;
            let rest = line[at + 4..].trim_start();
            for ty in INT_TYPES {
                if let Some(tail) = rest.strip_prefix(ty) {
                    let after = tail.chars().next().unwrap_or(' ');
                    if !(after.is_ascii_alphanumeric() || after == '_') {
                        return Some(format!(
                            "`as {ty}` cast in simulated-time arithmetic (silent truncation)"
                        ));
                    }
                }
            }
        }
        None
    });
}

/// Runs every per-file rule over one file.
pub fn run_all(ctx: &FileCtx, cfg: &crate::config::Config, out: &mut Vec<Finding>) {
    d1_std_hashmap(ctx, &cfg.rule("D1"), out);
    d2_wall_clock(ctx, &cfg.rule("D2"), out);
    d3_unlabeled_rng(ctx, &cfg.rule("D3"), out);
    d4_parallel_accumulation(ctx, &cfg.rule("D4"), out);
    d5_unsnapshotted_state(ctx, &cfg.rule("D5"), out);
    d6_shard_worker_capture(ctx, &cfg.rule("D6"), out);
    h1_hotpath_alloc(ctx, &cfg.rule("H1"), out);
    h2_time_casts(ctx, &cfg.rule("H2"), out);
}

// ===================================================== interprocedural pass

use crate::callgraph;
use crate::index::{RepoIndex, SourceFile};

/// Emits a finding located in an arbitrary indexed file.
fn push_at(
    out: &mut Vec<Finding>,
    rule: &'static str,
    file: &SourceFile,
    line_idx: usize,
    message: String,
) {
    out.push(Finding {
        rule,
        severity: Severity::Deny,
        file: file.rel.clone(),
        line: line_idx + 1,
        message,
        hint: hint_for(rule),
        baselined: false,
    });
}

/// The method names that mark a snapshot *save* body (`snap_save` inherent
/// impls; `save` from `impl Snap for …`).
const SNAP_SAVE_FNS: &[&str] = &["snap_save", "save"];
/// The method names that mark a snapshot *restore* body (`snap_load` is
/// the constructor-style variant: `fn snap_load(r) -> Self`).
const SNAP_RESTORE_FNS: &[&str] = &["snap_restore", "snap_load", "load"];

/// S1: every field of a snapshotting type must be written by its save body
/// and read by its restore body.
///
/// A type "participates in snapshotting" when the index holds a
/// `snap_save`/`save` fn owned by an `impl` of that type. For each named
/// field, the save bodies (same-file impls preferred, to keep same-named
/// types in other files from cross-talking) must mention the field as a
/// token, and so must the restore bodies (`snap_restore`/`load`). Mention
/// is coverage: `w.u64(self.next_seq)` and `self.overload.snap_save(w)`
/// both count — the differential battery (`tests/snapshot.rs`) proves the
/// *values* round-trip; S1 proves no field is forgotten entirely.
///
/// Deliberately un-plumbed fields (configuration rebuilt from params,
/// scratch buffers, derived caches) are waived at the definition site with
/// `// simlint: allow(S1) — reason`, which doubles as documentation.
pub fn s1_snapshot_field_coverage(
    files: &[SourceFile],
    index: &RepoIndex,
    cfg: &RuleCfg,
    out: &mut Vec<Finding>,
) {
    for s in &index.structs {
        let file = &files[s.file];
        if !rule_in_scope(cfg, &file.rel) {
            continue;
        }
        if !cfg.include_tests && file.line_is_test(s.line) {
            continue;
        }
        let save_bodies = snap_bodies(index, &s.name, s.file, SNAP_SAVE_FNS);
        if save_bodies.is_empty() {
            continue; // not a snapshotting type; D5 covers the rest
        }
        let restore_bodies = snap_bodies(index, &s.name, s.file, SNAP_RESTORE_FNS);
        if restore_bodies.is_empty() {
            push_at(
                out,
                "S1",
                file,
                s.line,
                format!(
                    "snapshotting type `{}` has {} but no matching {}",
                    s.name, "snap_save", "snap_restore/load"
                ),
            );
            continue;
        }
        for field in &s.fields {
            if file.model.is_allowed(field.line, "S1") {
                continue;
            }
            if !cfg.include_tests && file.line_is_test(field.line) {
                continue;
            }
            if !bodies_mention(files, &save_bodies, &field.name) {
                push_at(
                    out,
                    "S1",
                    file,
                    field.line,
                    format!(
                        "field `{}` of snapshotting type `{}` is never written in {} — a checkpoint would silently lose it",
                        field.name, s.name, "snap_save"
                    ),
                );
            } else if !bodies_mention(files, &restore_bodies, &field.name) {
                push_at(
                    out,
                    "S1",
                    file,
                    field.line,
                    format!(
                        "field `{}` of snapshotting type `{}` is written in {} but never read in {} — a resume would silently lose it",
                        field.name, s.name, "snap_save", "snap_restore"
                    ),
                );
            }
        }
    }
}

/// The save/restore fn bodies for `owner`, as (file, start, end) ranges.
/// Same-file definitions win when present (two same-named types in
/// different files must not validate each other's fields).
fn snap_bodies(
    index: &RepoIndex,
    owner: &str,
    def_file: usize,
    names: &[&str],
) -> Vec<(usize, usize, usize)> {
    let all: Vec<_> = names
        .iter()
        .flat_map(|n| index.fns_of(owner, n))
        .filter(|f| !f.in_test)
        .collect();
    let same_file: Vec<_> = all.iter().filter(|f| f.file == def_file).collect();
    let picked: Vec<&&crate::index::FnDef> = if same_file.is_empty() {
        all.iter().collect()
    } else {
        same_file
    };
    picked
        .into_iter()
        .map(|f| (f.file, f.body_start, f.body_end))
        .collect()
}

/// Whether any body range mentions `name` as a token.
fn bodies_mention(files: &[SourceFile], bodies: &[(usize, usize, usize)], name: &str) -> bool {
    bodies.iter().any(|&(file, start, end)| {
        let code = &files[file].model.code;
        code[start..=end.min(code.len() - 1)]
            .iter()
            .any(|line| find_token(line, name).is_some())
    })
}

/// H3: a call made on a hotpath-fenced line must not reach an
/// allocation-prone line through the call graph (bounded depth).
///
/// H1 checks the fenced lines themselves; H3 follows every call out of the
/// fence through [`callgraph::find_alloc_chain`] and flags the call site
/// with the full chain and the offending line, so "the fence is clean but
/// its helper allocates" is caught without fencing the world.
pub fn h3_hotpath_call_alloc(
    files: &[SourceFile],
    index: &RepoIndex,
    cfg: &RuleCfg,
    out: &mut Vec<Finding>,
) {
    for f in &index.fns {
        let file = &files[f.file];
        if !rule_in_scope(cfg, &file.rel) {
            continue;
        }
        let mut flagged: Vec<(usize, &str)> = Vec::new(); // (line, callee) dedup
        for call in &f.calls {
            if !file.model.hotpath.get(call.line).copied().unwrap_or(false) {
                continue;
            }
            if file.model.is_allowed(call.line, "H3") {
                continue;
            }
            if !cfg.include_tests && file.line_is_test(call.line) {
                continue;
            }
            if flagged
                .iter()
                .any(|&(l, c)| l == call.line && c == call.callee)
            {
                continue;
            }
            let Some(chain) =
                callgraph::find_alloc_chain(index, files, call, f.owner.as_deref())
            else {
                continue;
            };
            flagged.push((call.line, &call.callee));
            push_at(
                out,
                "H3",
                file,
                call.line,
                format!(
                    "fenced call into `{}` reaches allocation-prone `{}` at {}:{} (chain: {})",
                    call.callee,
                    chain.needle,
                    chain.file,
                    chain.line,
                    chain.render()
                ),
            );
        }
    }
}

/// One label's call sites, for the registry printed under `--format json`.
#[derive(Debug, Clone)]
pub struct RngStreamEntry {
    /// The literal label.
    pub label: String,
    /// `(repo-relative file, 1-indexed line)` of every derivation site.
    pub sites: Vec<(String, usize)>,
}

/// D7: RNG stream labels must be string literals, and one label must not be
/// derived from two different modules.
///
/// `RngFactory::stream(label)` keys the stream by the label's *text*: two
/// subsystems that happen to pick the same label silently share — and
/// correlate — what they each believe is an independent stream. A
/// non-literal label defeats the registry entirely (the text is unknowable
/// statically), so it is flagged outright. Returns the registry of literal
/// labels for the JSON report.
pub fn d7_rng_label_registry(
    files: &[SourceFile],
    index: &RepoIndex,
    cfg: &RuleCfg,
    out: &mut Vec<Finding>,
) -> Vec<RngStreamEntry> {
    // In-scope, non-test, non-allowed sites, in deterministic index order.
    let sites: Vec<_> = index
        .rng
        .iter()
        .filter(|s| rule_in_scope(cfg, &files[s.file].rel))
        .filter(|s| cfg.include_tests || !s.in_test)
        .collect();
    let mut registry: Vec<RngStreamEntry> = Vec::new();
    for site in &sites {
        let file = &files[site.file];
        match &site.label {
            None => {
                if !file.model.is_allowed(site.line, "D7") {
                    push_at(
                        out,
                        "D7",
                        file,
                        site.line,
                        format!(
                            "`{}` label is not a string literal — the stream registry cannot prove it collision-free",
                            site.method
                        ),
                    );
                }
            }
            Some(label) => {
                match registry.iter_mut().find(|e| &e.label == label) {
                    Some(entry) => {
                        let (first_file, first_line) = entry.sites[0].clone();
                        entry.sites.push((file.rel.clone(), site.line + 1));
                        // Same module re-deriving its own stream is fine
                        // (it reproduces the same sequence by design); the
                        // hazard is two *different* modules colliding.
                        if first_file != file.rel && !file.model.is_allowed(site.line, "D7") {
                            push_at(
                                out,
                                "D7",
                                file,
                                site.line,
                                format!(
                                    "RNG stream label \"{label}\" is already derived at {first_file}:{first_line} — two modules sharing one label silently correlate their streams"
                                ),
                            );
                        }
                    }
                    None => registry.push(RngStreamEntry {
                        label: label.clone(),
                        sites: vec![(file.rel.clone(), site.line + 1)],
                    }),
                }
            }
        }
    }
    registry
}

/// Runs the interprocedural rules (pass 2) over the indexed tree. Returns
/// the RNG label registry for the JSON report.
pub fn run_index_rules(
    files: &[SourceFile],
    index: &RepoIndex,
    cfg: &crate::config::Config,
    out: &mut Vec<Finding>,
) -> Vec<RngStreamEntry> {
    s1_snapshot_field_coverage(files, index, &cfg.rule("S1"), out);
    h3_hotpath_call_alloc(files, index, &cfg.rule("H3"), out);
    d7_rng_label_registry(files, index, &cfg.rule("D7"), out)
}
