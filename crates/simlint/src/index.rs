//! Pass 1: the repo-wide symbol index.
//!
//! The per-file rules (D1–D6, H1–H2) only need one file's [`SourceModel`];
//! the interprocedural rules (S1 snapshot field coverage, H3 call-graph
//! hot-path allocation, D7 RNG label registry) need facts that span files.
//! This module extracts those facts from every scanned file's code view in
//! one extra pass and exposes them as a queryable [`RepoIndex`]:
//!
//! * **struct definitions** — name, definition line, and every named field
//!   with its own definition line (tuple and unit structs carry no named
//!   fields and are skipped);
//! * **`impl` blocks and `fn` definitions** — each function records its
//!   owning `impl` type (if any), its signature line, its body line range,
//!   the calls its body makes (with the `Type::` qualifier when present),
//!   and the allocation-prone lines inside its body;
//! * **RNG stream derivations** — every `.stream(…)`/`.substream(…)` call
//!   site with its label when the argument is a string literal (read from
//!   the *raw* source, since the code view blanks literals).
//!
//! The index is built from the same lossy-but-line-exact code view the
//! per-line rules use: it is not a Rust parser, it is a bracket-matching
//! state machine. That is deliberate — the build is offline (no `syn`) and
//! every fact the rules need survives the approximation. Where the
//! approximation could produce a *false positive*, the extractors err on
//! the permissive side instead (e.g. over-collecting identifiers only makes
//! S1 quieter, never noisier).

use crate::scan::SourceModel;

/// One scanned file: the inputs both passes share.
pub struct SourceFile {
    /// Repo-relative path, `/` separators.
    pub rel: String,
    /// Raw source lines (string literals intact — the code view blanks
    /// them, and D7 needs the label text).
    pub raw: Vec<String>,
    /// The per-line model (code view, allow directives, fences, test map).
    pub model: SourceModel,
    /// Whole file is test context (under `tests/`, `benches/`, `examples/`).
    pub is_test_file: bool,
}

impl SourceFile {
    /// Builds the model + raw-line view for one source string.
    pub fn new(rel: &str, source: &str, is_test_file: bool) -> SourceFile {
        SourceFile {
            rel: rel.to_owned(),
            raw: source.lines().map(str::to_owned).collect(),
            model: crate::scan::model(source),
            is_test_file,
        }
    }

    /// Whether 0-indexed `line` is test context.
    pub fn line_is_test(&self, line: usize) -> bool {
        self.is_test_file || self.model.in_test.get(line).copied().unwrap_or(false)
    }
}

/// A named struct field.
#[derive(Debug)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// 0-indexed definition line.
    pub line: usize,
}

/// A struct with named fields.
#[derive(Debug)]
pub struct StructDef {
    /// Type name (generics stripped).
    pub name: String,
    /// Index into the scanned-file list.
    pub file: usize,
    /// 0-indexed line of `struct Name`.
    pub line: usize,
    /// Named fields in definition order.
    pub fields: Vec<FieldDef>,
}

/// What a call's callee is invoked *on* — the resolution key.
///
/// The scanner has no type information, so resolution trades recall for
/// precision: `self.f()` resolves through the calling fn's `impl` owner
/// (exact), `f()` to free functions, `path::f()` to the named impl or the
/// same-named module file, and `recv.f()` on any other receiver is **not**
/// resolved at all — method names like `push`/`len`/`map` collide with half
/// the ecosystem, and a wrong edge turns every fence into noise.
#[derive(Debug, Clone, PartialEq)]
pub enum Recv {
    /// `callee(…)` — a free function.
    Bare,
    /// `self.callee(…)` — a method on the calling fn's own type.
    SelfDot,
    /// `seg::callee(…)` — an associated fn (`Type::new`) or a module
    /// function (`par::map`); the segment is recorded.
    Path(String),
    /// `recv.callee(…)` on any other receiver — unresolvable by name.
    Other,
}

/// One call made inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// Callee name (`pick`, `snap_save`, …).
    pub callee: String,
    /// What the callee is invoked on (see [`Recv`]).
    pub recv: Recv,
    /// 0-indexed call-site line.
    pub line: usize,
}

/// An allocation-prone line inside a function body (H1's needle list),
/// excluding lines already inside a hotpath fence (H1's own territory) and
/// lines waived with `allow(H1)`/`allow(H3)`.
#[derive(Debug)]
pub struct AllocSite {
    /// Which needle matched (`.clone(`, `Vec::new`, …).
    pub needle: &'static str,
    /// 0-indexed line.
    pub line: usize,
}

/// A function definition.
#[derive(Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// The `impl` type the definition sits in, generics stripped
    /// (`impl Snap for Foo` records `Foo`). `None` for free functions.
    pub owner: Option<String>,
    /// Index into the scanned-file list.
    pub file: usize,
    /// 0-indexed signature line.
    pub line: usize,
    /// 0-indexed first body line (the line holding the opening `{`).
    pub body_start: usize,
    /// 0-indexed last body line (the line holding the closing `}`).
    pub body_end: usize,
    /// Definition sits in test context.
    pub in_test: bool,
    /// Calls the body makes.
    pub calls: Vec<CallSite>,
    /// Allocation-prone lines in the body (see [`AllocSite`]).
    pub allocs: Vec<AllocSite>,
}

/// One `.stream(…)`/`.substream(…)` call site.
#[derive(Debug)]
pub struct RngSite {
    /// Index into the scanned-file list.
    pub file: usize,
    /// 0-indexed call-site line.
    pub line: usize,
    /// `"stream"` or `"substream"`.
    pub method: &'static str,
    /// The label when the first argument is a string literal; `None` when
    /// it is any other expression (a D7 finding).
    pub label: Option<String>,
    /// Call site sits in test context.
    pub in_test: bool,
}

/// The repo-wide symbol index (pass 1's output).
#[derive(Debug, Default)]
pub struct RepoIndex {
    /// Every named-field struct, in (file, line) order.
    pub structs: Vec<StructDef>,
    /// Every function definition, in (file, line) order.
    pub fns: Vec<FnDef>,
    /// Every RNG stream derivation, in (file, line) order.
    pub rng: Vec<RngSite>,
}

/// Allocation-prone call needles — the one list H1 (direct, fenced) and H3
/// (transitive, through the call graph) share.
pub const ALLOC_NEEDLES: &[&str] = &[
    "Vec::new",
    "vec!",
    "String::new",
    "String::from",
    "format!",
    "Box::new",
    "HashMap::new",
    "BTreeMap::new",
    ".to_string(",
    ".to_owned(",
    ".to_vec(",
    ".clone(",
    ".collect(",
];

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "as", "in", "move", "else", "unsafe",
    "let", "mut", "ref", "impl", "pub", "where", "use", "crate", "box", "dyn", "Some", "Ok",
    "Err", "None",
];

impl RepoIndex {
    /// Builds the index over every scanned file.
    pub fn build(files: &[SourceFile]) -> RepoIndex {
        let mut index = RepoIndex::default();
        for (file_idx, file) in files.iter().enumerate() {
            index_file(file, file_idx, &mut index);
        }
        index
    }

    /// Functions named `name` owned by `impl owner` blocks.
    pub fn fns_of(&self, owner: &str, name: &str) -> Vec<&FnDef> {
        self.fns
            .iter()
            .filter(|f| f.name == name && f.owner.as_deref() == Some(owner))
            .collect()
    }

    /// Free functions (no `impl` owner) named `name`.
    pub fn free_fns(&self, name: &str) -> Vec<&FnDef> {
        self.fns
            .iter()
            .filter(|f| f.name == name && f.owner.is_none())
            .collect()
    }

    /// Free functions named `name` defined in a file that *is* module
    /// `module` (`…/par.rs` or `…/par/mod.rs`) — how `par::map(…)` calls
    /// resolve when no `impl par` exists.
    pub fn free_fns_in_module<'a>(
        &'a self,
        files: &[SourceFile],
        module: &str,
        name: &str,
    ) -> Vec<&'a FnDef> {
        self.fns
            .iter()
            .filter(|f| f.name == name && f.owner.is_none())
            .filter(|f| {
                let rel = &files[f.file].rel;
                rel.ends_with(&format!("/{module}.rs")) || rel.ends_with(&format!("/{module}/mod.rs"))
            })
            .collect()
    }

    /// Functions named `name`, any owner.
    pub fn fns_named(&self, name: &str) -> Vec<&FnDef> {
        self.fns.iter().filter(|f| f.name == name).collect()
    }
}

// ---------------------------------------------------------------- extraction

/// Character cursor over one file's code view, tracking (line, col).
struct Cursor<'a> {
    lines: &'a [String],
    line: usize,
    chars: Vec<char>, // current line's chars
    col: usize,
}

impl<'a> Cursor<'a> {
    fn new(lines: &'a [String]) -> Cursor<'a> {
        let chars = lines.first().map(|l| l.chars().collect()).unwrap_or_default();
        Cursor {
            lines,
            line: 0,
            chars,
            col: 0,
        }
    }

    fn done(&self) -> bool {
        self.line >= self.lines.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.col).copied()
    }

    fn bump(&mut self) {
        self.col += 1;
        while !self.done() && self.col >= self.chars.len() {
            self.line += 1;
            self.col = 0;
            self.chars = self
                .lines
                .get(self.line)
                .map(|l| l.chars().collect())
                .unwrap_or_default();
        }
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Reads the identifier starting at the cursor (empty if none).
    fn read_ident(&mut self) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                out.push(c);
                self.bump();
            } else {
                break;
            }
        }
        out
    }

    /// Skips a balanced `<…>` group (cursor on `<`). `->` inside (fn-pointer
    /// return types) is skipped so its `>` cannot close the group early.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        let mut prev = ' ';
        while let Some(c) = self.peek() {
            match c {
                '<' => depth += 1,
                '>' if prev == '-' => {} // `->` in a type position
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                _ => {}
            }
            prev = c;
            self.bump();
        }
    }

    /// Skips a balanced bracket group of any kind (cursor on the opener).
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0i32;
        while let Some(c) = self.peek() {
            if c == open {
                depth += 1;
            } else if c == close {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }
}

/// Indexes one file: structs, impl blocks + fns, RNG stream sites.
fn index_file(file: &SourceFile, file_idx: usize, index: &mut RepoIndex) {
    let code = &file.model.code;
    let mut cur = Cursor::new(code);
    // (brace depth at which the impl body opened, owner type name)
    let mut impl_stack: Vec<(i32, String)> = Vec::new();
    let mut depth = 0i32;

    while !cur.done() {
        cur.skip_ws();
        let Some(c) = cur.peek() else { break };
        if c.is_ascii_alphabetic() || c == '_' {
            let start_line = cur.line;
            let word = cur.read_ident();
            match word.as_str() {
                "struct" => parse_struct(&mut cur, file_idx, start_line, index),
                "impl" => {
                    if let Some(owner) = parse_impl_header(&mut cur) {
                        // The header parse stops on the body `{`.
                        if cur.peek() == Some('{') {
                            depth += 1;
                            impl_stack.push((depth, owner));
                            cur.bump();
                        }
                    }
                }
                "fn" => {
                    let owner = impl_stack.last().map(|(_, o)| o.clone());
                    parse_fn(&mut cur, file, file_idx, owner, index);
                }
                _ => {}
            }
        } else {
            match c {
                '{' => {
                    depth += 1;
                    cur.bump();
                }
                '}' => {
                    depth -= 1;
                    while impl_stack.last().is_some_and(|(d, _)| *d > depth) {
                        impl_stack.pop();
                    }
                    cur.bump();
                }
                _ => cur.bump(),
            }
        }
    }

    index_rng_sites(file, file_idx, index);
}

/// Parses `struct Name …` with the cursor just past `struct`. Records named
/// fields; tuple (`(…);`) and unit (`;`) structs are skipped.
fn parse_struct(cur: &mut Cursor, file_idx: usize, def_line: usize, index: &mut RepoIndex) {
    cur.skip_ws();
    let name = cur.read_ident();
    if name.is_empty() {
        return;
    }
    // Skip generics, then find the body opener (or bail at `;` / `(`).
    loop {
        cur.skip_ws();
        match cur.peek() {
            Some('<') => cur.skip_angles(),
            Some('(') | Some(';') | None => return, // tuple/unit struct
            Some('{') => break,
            Some(_) => cur.bump(), // `where` clauses etc.
        }
    }
    cur.bump(); // consume `{`
    let mut fields = Vec::new();
    loop {
        cur.skip_ws();
        match cur.peek() {
            None | Some('}') => break,
            Some('#') => {
                // Attribute: `#[…]`.
                cur.bump();
                cur.skip_ws();
                if cur.peek() == Some('[') {
                    cur.skip_balanced('[', ']');
                }
            }
            Some(c) if c.is_ascii_alphabetic() || c == '_' => {
                let line = cur.line;
                let ident = cur.read_ident();
                if ident == "pub" {
                    cur.skip_ws();
                    if cur.peek() == Some('(') {
                        cur.skip_balanced('(', ')');
                    }
                    continue;
                }
                cur.skip_ws();
                if cur.peek() == Some(':') {
                    cur.bump();
                    if cur.peek() == Some(':') {
                        // `::` — not a field after all; skip to the next `,`.
                        skip_to_field_end(cur);
                        continue;
                    }
                    fields.push(FieldDef { name: ident, line });
                    skip_to_field_end(cur);
                } else {
                    skip_to_field_end(cur);
                }
            }
            Some(_) => cur.bump(),
        }
    }
    index.structs.push(StructDef {
        name,
        file: file_idx,
        line: def_line,
        fields,
    });
}

/// Skips a field's type up to the `,` (consumed) or the struct's closing
/// `}` (left in place), tracking every bracket kind so commas inside
/// `DetHashMap<K, V>`, tuples, and arrays don't end the field early.
fn skip_to_field_end(cur: &mut Cursor) {
    let mut prev = ' ';
    loop {
        match cur.peek() {
            None => return,
            Some(',') => {
                cur.bump();
                return;
            }
            Some('}') => return,
            Some('<') => {
                cur.skip_angles();
                prev = '>';
                continue;
            }
            Some('>') if prev == '-' => {
                cur.bump(); // `->` in an fn-pointer type
                prev = '>';
                continue;
            }
            Some('(') => {
                cur.skip_balanced('(', ')');
                prev = ')';
                continue;
            }
            Some('[') => {
                cur.skip_balanced('[', ']');
                prev = ']';
                continue;
            }
            Some('{') => {
                cur.skip_balanced('{', '}');
                prev = '}';
                continue;
            }
            Some(c) => {
                prev = c;
                cur.bump();
            }
        }
    }
}

/// Parses the `impl … {` header with the cursor just past `impl`, returning
/// the implemented type's base name (`impl Snap for Foo<T>` → `Foo`).
/// Leaves the cursor on the body `{`.
fn parse_impl_header(cur: &mut Cursor) -> Option<String> {
    cur.skip_ws();
    if cur.peek() == Some('<') {
        cur.skip_angles();
    }
    let first = parse_type_path(cur)?;
    cur.skip_ws();
    // `impl Trait for Type` — the type is what we want. (When the next
    // word is not `for` — e.g. `where` — consuming it is harmless: the
    // skip-to-`{` loop below swallows the rest of the header anyway.)
    let mut owner = first;
    if cur.read_ident() == "for" {
        cur.skip_ws();
        owner = parse_type_path(cur)?;
    }
    // Skip `where` clauses and anything else up to the body opener.
    loop {
        match cur.peek() {
            None | Some('{') => break,
            Some('<') => cur.skip_angles(),
            Some(_) => cur.bump(),
        }
    }
    Some(owner)
}

/// Parses a type path (`a::b::Name<G>`), returning the base name of the
/// last segment. Leaves the cursor after the path.
fn parse_type_path(cur: &mut Cursor) -> Option<String> {
    let mut last = String::new();
    loop {
        cur.skip_ws();
        match cur.peek() {
            Some('&') => {
                cur.bump(); // reference prefix
                continue;
            }
            Some('\'') => {
                cur.bump();
                cur.read_ident(); // lifetime name, not a type segment
                continue;
            }
            _ => {}
        }
        let seg = cur.read_ident();
        if seg.is_empty() {
            break;
        }
        if seg == "mut" || seg == "dyn" {
            continue; // prefix keywords, not segments
        }
        last = seg;
        cur.skip_ws();
        if cur.peek() == Some('<') {
            cur.skip_angles();
            cur.skip_ws();
        }
        if cur.peek() == Some(':') {
            cur.bump();
            if cur.peek() == Some(':') {
                cur.bump();
                continue;
            }
            break;
        }
        break;
    }
    if last.is_empty() {
        None
    } else {
        Some(last)
    }
}

/// Parses `fn name …` with the cursor just past `fn`. Brace-matches the
/// body, records the definition, and leaves the cursor after the closing
/// `}` (or after `;` for body-less trait declarations).
fn parse_fn(
    cur: &mut Cursor,
    file: &SourceFile,
    file_idx: usize,
    owner: Option<String>,
    index: &mut RepoIndex,
) {
    cur.skip_ws();
    let sig_line = cur.line;
    let name = cur.read_ident();
    if name.is_empty() {
        return; // `fn(u32) -> u32` in type position
    }
    // Scan to the body `{` or a `;` (trait declaration, no body).
    loop {
        match cur.peek() {
            None => return,
            Some(';') => {
                cur.bump();
                return;
            }
            Some('<') => cur.skip_angles(),
            Some('(') => cur.skip_balanced('(', ')'),
            Some('{') => break,
            Some(_) => cur.bump(),
        }
    }
    let body_start = cur.line;
    // Brace-match the body.
    let mut body_depth = 0i32;
    while let Some(c) = cur.peek() {
        if c == '{' {
            body_depth += 1;
        } else if c == '}' {
            body_depth -= 1;
            if body_depth == 0 {
                break;
            }
        }
        cur.bump();
    }
    let body_end = cur.line;
    cur.bump(); // past the closing `}`
    let in_test = file.line_is_test(sig_line);

    let mut def = FnDef {
        name,
        owner,
        file: file_idx,
        line: sig_line,
        body_start,
        body_end,
        in_test,
        calls: Vec::new(),
        allocs: Vec::new(),
    };
    collect_body_facts(file, &mut def);
    index.fns.push(def);
}

/// Scans a function's body lines for calls and allocation-prone needles.
fn collect_body_facts(file: &SourceFile, def: &mut FnDef) {
    let code = &file.model.code;
    for idx in def.body_start..=def.body_end.min(code.len().saturating_sub(1)) {
        let line = &code[idx];
        collect_calls(line, idx, &mut def.calls);
        // Allocation needles: H1 owns fenced lines; `allow(H1)` marks a
        // line as sanctioned (cold-start growth), `allow(H3)` waives it
        // from transitive reach specifically.
        if file.model.hotpath.get(idx).copied().unwrap_or(false)
            || file.model.is_allowed(idx, "H1")
            || file.model.is_allowed(idx, "H3")
        {
            continue;
        }
        for needle in ALLOC_NEEDLES {
            let hit = if needle.starts_with('.') {
                line.contains(needle)
            } else {
                crate::scan::find_token(line, needle).is_some()
            };
            if hit {
                def.allocs.push(AllocSite { needle, line: idx });
                break; // one alloc record per line is enough for the chain
            }
        }
    }
}

/// Finds `ident(`-shaped calls in one code-view line.
fn collect_calls(line: &str, line_idx: usize, out: &mut Vec<CallSite>) {
    let chars: Vec<char> = line.chars().collect();
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut i = 0;
    while i < chars.len() {
        if !is_ident(chars[i]) || (i > 0 && is_ident(chars[i - 1])) {
            i += 1;
            continue;
        }
        // Identifier starts at i.
        let start = i;
        while i < chars.len() && is_ident(chars[i]) {
            i += 1;
        }
        let ident: String = chars[start..i].iter().collect();
        // Macro? `ident!(…)` is not a function call.
        let mut j = i;
        if chars.get(j) == Some(&'!') {
            continue;
        }
        while chars.get(j).is_some_and(|c| c.is_whitespace()) {
            j += 1;
        }
        if chars.get(j) != Some(&'(') {
            continue;
        }
        if ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&ident.as_str()) {
            continue;
        }
        // Definition, not a call?
        let before: String = chars[..start].iter().collect();
        let btrim = before.trim_end();
        if btrim.ends_with("fn") {
            continue;
        }
        let recv = if let Some(head) = btrim.strip_suffix("::") {
            // `seg::ident(` — keep the segment when it is an identifier.
            let q = trailing_ident(head);
            if q.is_empty() || q.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                Recv::Other // `<T as Trait>::f(`, `]::f(` … — give up
            } else {
                Recv::Path(q)
            }
        } else if let Some(head) = btrim.strip_suffix('.') {
            if trailing_ident(head) == "self" && !head.trim_end_matches("self").ends_with('.') {
                Recv::SelfDot
            } else {
                Recv::Other
            }
        } else {
            Recv::Bare
        };
        out.push(CallSite {
            callee: ident,
            recv,
            line: line_idx,
        });
    }
}

/// The identifier ending `head`, or `""`.
fn trailing_ident(head: &str) -> String {
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    head.chars()
        .rev()
        .take_while(|&c| is_ident(c))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect()
}

/// Indexes `.stream(…)`/`.substream(…)` call sites, reading the label from
/// the raw source (the code view blanks string literals).
fn index_rng_sites(file: &SourceFile, file_idx: usize, index: &mut RepoIndex) {
    for (idx, line) in file.model.code.iter().enumerate() {
        for method in ["substream", "stream"] {
            let Some(at) = crate::scan::find_token(line, method) else {
                continue;
            };
            // Must be a call: `(` after the token (ws tolerated).
            let after = line[at + method.len()..].trim_start();
            if !after.starts_with('(') {
                continue;
            }
            // Skip definitions (`fn stream(…)`) and non-method uses: the
            // call form is `recv.stream(` or `factory.substream(`.
            if !line[..at].trim_end().ends_with('.') {
                continue;
            }
            let open_col = at + (line[at + method.len()..].len() - after.len()) + method.len();
            let label = literal_label(&file.raw, idx, open_col);
            index.rng.push(RngSite {
                file: file_idx,
                line: idx,
                method,
                label,
                in_test: file.line_is_test(idx),
            });
            break; // `substream` already matched; don't re-match `stream`
        }
    }
}

/// Reads the string literal opening the argument list at `(` on
/// `raw[line]` char-offset `open_col`. Looks ahead a couple of lines for
/// multi-line calls. Returns `None` when the first argument is not a
/// string literal.
fn literal_label(raw: &[String], line: usize, open_col: usize) -> Option<String> {
    // The code view maps 1:1 to raw by *char* index (every blanked char
    // becomes one space), so char offsets line up even past multi-byte
    // characters in comments.
    let mut cur_line = line;
    let mut chars: Vec<char> = raw.get(cur_line)?.chars().collect();
    let mut i = open_col + 1; // past the `(`
    loop {
        while i < chars.len() && chars[i].is_whitespace() {
            i += 1;
        }
        if i < chars.len() {
            break;
        }
        // Argument on a later line (multi-line call); look a couple ahead.
        cur_line += 1;
        if cur_line > line + 2 {
            return None;
        }
        chars = raw.get(cur_line)?.chars().collect();
        i = 0;
    }
    if chars.get(i) != Some(&'"') {
        return None;
    }
    i += 1;
    let mut label = String::new();
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                // Escapes keep their following char verbatim — labels in
                // this repo are plain ASCII, this is just for robustness.
                if let Some(&c) = chars.get(i + 1) {
                    label.push(c);
                    i += 2;
                } else {
                    return None;
                }
            }
            '"' => return Some(label),
            c => {
                label.push(c);
                i += 1;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs", src, false)
    }

    #[test]
    fn indexes_struct_fields_with_lines() {
        let src = "pub struct Foo<T: Clone> {\n    pub a: u64,\n    b: DetHashMap<u32, Vec<f64>>,\n    c: fn(u32) -> u32,\n}\nstruct Unit;\nstruct Tup(u32);\n";
        let idx = RepoIndex::build(&[file(src)]);
        assert_eq!(idx.structs.len(), 1);
        let s = &idx.structs[0];
        assert_eq!(s.name, "Foo");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(s.fields[1].line, 2);
    }

    #[test]
    fn indexes_fns_with_owners_and_calls() {
        let src = "impl Snap for Foo {\n    fn save(&self, w: &mut W) {\n        w.u64(self.a);\n        helper(self.b);\n    }\n}\nfn helper(x: u64) {\n    let v = Vec::new();\n    other::thing(x);\n}\n";
        let idx = RepoIndex::build(&[file(src)]);
        let save = idx.fns_of("Foo", "save").into_iter().next().expect("save indexed");
        assert_eq!(save.line, 1);
        assert!(save.calls.iter().any(|c| c.callee == "helper"));
        assert!(save.calls.iter().any(|c| c.callee == "u64"));
        let helper = idx.fns_named("helper").into_iter().find(|f| f.owner.is_none()).unwrap();
        assert_eq!(helper.allocs.len(), 1);
        assert_eq!(helper.allocs[0].needle, "Vec::new");
        let thing = helper.calls.iter().find(|c| c.callee == "thing").unwrap();
        assert_eq!(thing.recv, Recv::Path("other".to_owned()));
    }

    #[test]
    fn call_receivers_are_classified() {
        let src = "impl Foo {\n    fn go(&mut self) {\n        self.step();\n        helper();\n        Bar::make();\n        self.queue.push(1);\n        par::map(x);\n    }\n}\n";
        let idx = RepoIndex::build(&[file(src)]);
        let go = idx.fns_of("Foo", "go").into_iter().next().unwrap();
        let recv_of = |name: &str| {
            go.calls
                .iter()
                .find(|c| c.callee == name)
                .map(|c| c.recv.clone())
        };
        assert_eq!(recv_of("step"), Some(Recv::SelfDot));
        assert_eq!(recv_of("helper"), Some(Recv::Bare));
        assert_eq!(recv_of("make"), Some(Recv::Path("Bar".to_owned())));
        assert_eq!(recv_of("push"), Some(Recv::Other), "`self.queue.push` is not a self-call");
        assert_eq!(recv_of("map"), Some(Recv::Path("par".to_owned())));
    }

    #[test]
    fn fenced_and_allowed_alloc_lines_are_not_recorded() {
        let src = "// simlint: hotpath(begin)\nfn fenced() {\n    let v = Vec::new();\n}\n// simlint: hotpath(end)\nfn cold() {\n    let v = Vec::new(); // simlint: allow(H3) — cold start\n}\n";
        let idx = RepoIndex::build(&[file(src)]);
        assert!(idx.fns_named("fenced").into_iter().next().unwrap().allocs.is_empty());
        assert!(idx.fns_named("cold").into_iter().next().unwrap().allocs.is_empty());
    }

    #[test]
    fn indexes_rng_labels_from_raw_source() {
        let src = "fn setup(f: &RngFactory) {\n    let a = f.stream(\"arrivals\");\n    let b = f.substream(\"chaos.plan\", 3);\n    let c = f.stream(label);\n}\n";
        let idx = RepoIndex::build(&[file(src)]);
        assert_eq!(idx.rng.len(), 3);
        assert_eq!(idx.rng[0].label.as_deref(), Some("arrivals"));
        assert_eq!(idx.rng[0].method, "stream");
        assert_eq!(idx.rng[1].label.as_deref(), Some("chaos.plan"));
        assert_eq!(idx.rng[1].method, "substream");
        assert_eq!(idx.rng[2].label, None, "non-literal label");
    }

    #[test]
    fn rng_definition_lines_are_skipped() {
        let src = "pub fn stream(&self, label: &str) -> Rng {\n    self.derive(label)\n}\n";
        let idx = RepoIndex::build(&[file(src)]);
        assert!(idx.rng.is_empty(), "definitions are not call sites");
    }

    #[test]
    fn impl_for_reference_target() {
        let src = "impl<'a> Snap for &'a mut Foo {\n    fn save(&self, w: &mut W) { w.u64(1); }\n}\n";
        let idx = RepoIndex::build(&[file(src)]);
        assert!(idx.fns_of("Foo", "save").into_iter().next().is_some());
    }
}
