//! Pass 2 support for H3: bounded reachability over the indexed call graph.
//!
//! H1 proves a hotpath *fence* allocation-free line by line — but a fence
//! that calls out into an unfenced helper is only as good as that helper.
//! H3 closes the gap: starting from every call made on a fenced line, it
//! walks the indexed call graph to a bounded depth and flags the call site
//! when any reachable function body contains an allocation-prone line. The
//! diagnostic names the whole chain and the offending line, so the fix is
//! mechanical: fence the helper (putting it under H1's per-line contract),
//! remove the allocation, or waive the call site with `allow(H3)`.
//!
//! Call → definition resolution is name-based (the scanner has no types),
//! so it trades recall for precision — see [`Recv`]:
//!
//! * `self.f(…)` resolves through the **calling fn's `impl` owner** — exact;
//! * `Type::f(…)` resolves to `fn f` inside `impl Type` blocks, falling
//!   back to free fns in a module *file* named `Type` (`par::map` →
//!   `par.rs`) — exact;
//! * bare `f(…)` resolves to free functions named `f` — near-exact (free
//!   helpers have distinctive names);
//! * `recv.f(…)` on any other receiver is **not followed**: names like
//!   `push`/`len`/`map` collide with std and every container in the repo,
//!   and one wrong edge would drown every fence in false chains.
//!
//! The search is depth-first with a visited set, bounded by
//! [`MAX_CHAIN_DEPTH`] function hops, and deterministic: functions are
//! explored in index order (file, line), so the reported chain is stable
//! across runs and platforms.

use crate::index::{CallSite, FnDef, Recv, RepoIndex, SourceFile};

/// Maximum number of function hops explored from a fenced call site.
/// Depth 1 is the callee itself; the fixture contract ("a helper that
/// allocates two hops down") needs 2; one more gives headroom without
/// letting name-based resolution wander.
pub const MAX_CHAIN_DEPTH: usize = 3;

/// An allocation reachable from a fenced call site.
pub struct AllocChain {
    /// Function names from the direct callee to the allocating function.
    pub chain: Vec<String>,
    /// Repo-relative file of the allocating line.
    pub file: String,
    /// 1-indexed allocating line.
    pub line: usize,
    /// The allocation needle that matched (`.clone(`, `Vec::new`, …).
    pub needle: &'static str,
}

impl AllocChain {
    /// `a → b → c` rendering of the chain.
    pub fn render(&self) -> String {
        self.chain.join(" → ")
    }
}

/// Resolves a call to candidate definitions, in deterministic index order.
/// `caller_owner` is the `impl` type of the fn making the call (`self.f()`
/// resolution). Test-context definitions never participate (they cannot be
/// reached from a fence, which only exists in non-test code).
fn resolve<'a>(
    index: &'a RepoIndex,
    files: &[SourceFile],
    call: &CallSite,
    caller_owner: Option<&str>,
) -> Vec<&'a FnDef> {
    let mut v = match &call.recv {
        Recv::SelfDot => match caller_owner {
            Some(owner) => index.fns_of(owner, &call.callee),
            None => Vec::new(),
        },
        Recv::Bare => index.free_fns(&call.callee),
        Recv::Path(seg) => {
            let mut v = index.fns_of(seg, &call.callee);
            if v.is_empty() {
                v = index.free_fns_in_module(files, seg, &call.callee);
            }
            v
        }
        Recv::Other => Vec::new(),
    };
    v.retain(|f| !f.in_test);
    v
}

/// Searches for an allocation-prone line reachable from `call` (made by a
/// fn owned by `caller_owner`) within [`MAX_CHAIN_DEPTH`] hops. Returns the
/// first chain found in deterministic order, shortest candidates first.
pub fn find_alloc_chain(
    index: &RepoIndex,
    files: &[SourceFile],
    call: &CallSite,
    caller_owner: Option<&str>,
) -> Option<AllocChain> {
    // Iterative deepening keeps the *shortest* chain first — the most
    // actionable diagnostic — at negligible cost on a graph this small.
    for depth in 1..=MAX_CHAIN_DEPTH {
        let mut visited: Vec<(usize, usize)> = Vec::new(); // (file, line) of fns
        if let Some(found) = search(index, files, call, caller_owner, depth, &mut visited) {
            return Some(found);
        }
    }
    None
}

fn search(
    index: &RepoIndex,
    files: &[SourceFile],
    call: &CallSite,
    caller_owner: Option<&str>,
    budget: usize,
    visited: &mut Vec<(usize, usize)>,
) -> Option<AllocChain> {
    if budget == 0 {
        return None;
    }
    for def in resolve(index, files, call, caller_owner) {
        let key = (def.file, def.line);
        if visited.contains(&key) {
            continue;
        }
        visited.push(key);
        if let Some(alloc) = def.allocs.first() {
            return Some(AllocChain {
                chain: vec![def.name.clone()],
                file: files[def.file].rel.clone(),
                line: alloc.line + 1,
                needle: alloc.needle,
            });
        }
        for next in &def.calls {
            if let Some(mut found) = search(
                index,
                files,
                next,
                def.owner.as_deref(),
                budget - 1,
                visited,
            ) {
                found.chain.insert(0, def.name.clone());
                return Some(found);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(src: &str) -> Vec<SourceFile> {
        vec![SourceFile::new("crates/x/src/lib.rs", src, false)]
    }

    fn bare(callee: &str) -> CallSite {
        CallSite {
            callee: callee.to_owned(),
            recv: Recv::Bare,
            line: 0,
        }
    }

    fn path(seg: &str, callee: &str) -> CallSite {
        CallSite {
            callee: callee.to_owned(),
            recv: Recv::Path(seg.to_owned()),
            line: 0,
        }
    }

    #[test]
    fn finds_two_hop_chain() {
        let src = "fn a() { b(); }\nfn b() { c(); }\nfn c() { let v = Vec::new(); }\n";
        let fs = files(src);
        let idx = RepoIndex::build(&fs);
        let chain = find_alloc_chain(&idx, &fs, &bare("a"), None).expect("reachable");
        assert_eq!(chain.render(), "a → b → c");
        assert_eq!(chain.line, 3);
        assert_eq!(chain.needle, "Vec::new");
    }

    #[test]
    fn respects_depth_bound() {
        let src = "fn a() { b(); }\nfn b() { c(); }\nfn c() { d(); }\nfn d() { let v = Vec::new(); }\n";
        let fs = files(src);
        let idx = RepoIndex::build(&fs);
        // d is 4 hops from the call *site* of a — but find_alloc_chain
        // starts at the callee, so `a` itself is hop 1: a→b→c exhausts the
        // budget before d's allocation.
        assert!(find_alloc_chain(&idx, &fs, &bare("a"), None).is_none());
        assert!(find_alloc_chain(&idx, &fs, &bare("b"), None).is_some());
    }

    #[test]
    fn cycles_terminate() {
        let src = "fn a() { b(); }\nfn b() { a(); }\n";
        let fs = files(src);
        let idx = RepoIndex::build(&fs);
        assert!(find_alloc_chain(&idx, &fs, &bare("a"), None).is_none());
    }

    #[test]
    fn qualified_calls_resolve_to_impl_only() {
        let src = "impl Foo {\n    fn make() { let v = Vec::new(); }\n}\nimpl Bar {\n    fn make() {}\n}\n";
        let fs = files(src);
        let idx = RepoIndex::build(&fs);
        assert!(find_alloc_chain(&idx, &fs, &path("Bar", "make"), None).is_none());
        assert!(find_alloc_chain(&idx, &fs, &path("Foo", "make"), None).is_some());
    }

    #[test]
    fn self_calls_resolve_through_caller_owner() {
        let src = "impl Foo {\n    fn helper(&self) { let v = Vec::new(); }\n}\nimpl Bar {\n    fn helper(&self) {}\n}\n";
        let fs = files(src);
        let idx = RepoIndex::build(&fs);
        let call = CallSite {
            callee: "helper".to_owned(),
            recv: Recv::SelfDot,
            line: 0,
        };
        assert!(find_alloc_chain(&idx, &fs, &call, Some("Bar")).is_none());
        assert!(find_alloc_chain(&idx, &fs, &call, Some("Foo")).is_some());
        assert!(find_alloc_chain(&idx, &fs, &call, None).is_none());
    }

    #[test]
    fn other_receivers_are_never_followed() {
        let src = "fn push() { let v = Vec::new(); }\n";
        let fs = files(src);
        let idx = RepoIndex::build(&fs);
        let call = CallSite {
            callee: "push".to_owned(),
            recv: Recv::Other,
            line: 0,
        };
        assert!(find_alloc_chain(&idx, &fs, &call, None).is_none());
        assert!(find_alloc_chain(&idx, &fs, &bare("push"), None).is_some());
    }

    #[test]
    fn module_path_calls_resolve_to_module_file() {
        let a = SourceFile::new(
            "crates/core/src/par.rs",
            "pub fn map() { let v: Vec<u32> = it.collect(); }\n",
            false,
        );
        let b = SourceFile::new(
            "crates/core/src/other.rs",
            "pub fn map() {}\n",
            false,
        );
        let fs = vec![a, b];
        let idx = RepoIndex::build(&fs);
        let chain = find_alloc_chain(&idx, &fs, &path("par", "map"), None).expect("resolved");
        assert_eq!(chain.file, "crates/core/src/par.rs");
        assert!(find_alloc_chain(&idx, &fs, &path("other", "map"), None).is_none());
    }

    #[test]
    fn test_context_definitions_never_participate() {
        let src = "#[cfg(test)]\nmod tests {\n    fn helper() { let v = Vec::new(); }\n}\n";
        let fs = files(src);
        let idx = RepoIndex::build(&fs);
        assert!(find_alloc_chain(&idx, &fs, &bare("helper"), None).is_none());
    }
}
