//! Quickstart: simulate TeaStore on a small machine and print a report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use loadgen::ClosedLoop;
use microsvc::{Deployment, Engine, EngineParams};
use simcore::{SimDuration, SimTime};
use std::sync::Arc;
use teastore::TeaStore;

fn main() {
    // 1. A machine: 8 cores / 16 hardware threads, two L3 domains.
    let topo = Arc::new(cputopo::Topology::desktop_8c());
    println!("{}\n", topo.summary());

    // 2. The application: TeaStore with the browse-profile request mix.
    let store = TeaStore::browse();
    println!("{}", store.service_table());
    let mix = store.mix();
    let app = store.into_app();

    // 3. A deployment: 2 unpinned instances of each service, 8 threads each.
    let deployment = Deployment::uniform(&app, &topo, 2, 8);

    // 4. Load: 64 closed-loop users with 10 ms think time; 300 ms warm-up,
    //    one measured second.
    let mut load = ClosedLoop::new(64)
        .think_time(SimDuration::from_millis(10))
        .mix(&mix)
        .warmup(SimDuration::from_millis(300))
        .measure(SimDuration::from_secs(1));

    // 5. Run and report.
    let mut engine = Engine::new(topo, EngineParams::default(), app, deployment, 42);
    engine.run(&mut load, SimTime::from_secs(30));
    let report = engine.report();
    println!("{}", report.summary());
    println!(
        "issued {} requests, completed {} within the run",
        load.issued(),
        load.completed()
    );
}
