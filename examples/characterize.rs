//! Characterization: synthesize the perf-counter view of TeaStore under
//! load and contrast it with conventional server workloads — the paper's
//! "microservices are different" argument.
//!
//! ```text
//! cargo run --release --example characterize
//! ```

use scaleup::{placement::Policy, tuner, Lab};
use teastore::TeaStore;
use uarch::comparison;

fn main() {
    let lab = Lab::paper_machine(11).with_users(2048);
    let store = TeaStore::browse();
    let replicas = tuner::proportional_replicas(store.app(), 64);
    let report = lab.run_policy(&store, Policy::Unpinned, &replicas);

    println!("TeaStore services under load ({}):", lab.topo.spec().name);
    println!(
        "{:<14} {:>6} {:>8} {:>8} {:>8} {:>9} {:>8}",
        "workload", "IPC", "L2MPKI", "L3MPKI", "BRMPKI", "FEbound%", "kernel%"
    );
    for s in &report.services {
        if s.counters.instructions == 0 {
            continue;
        }
        let m = s.metrics;
        println!(
            "{:<14} {:>6.2} {:>8.1} {:>8.2} {:>8.1} {:>9.1} {:>8.1}",
            s.name,
            m.ipc,
            m.l2_mpki,
            m.l3_mpki,
            m.branch_mpki,
            m.frontend_bound * 100.0,
            m.kernel_frac * 100.0
        );
    }

    println!("\nconventional reference workloads (solo):");
    let params = lab.engine_params.uarch.clone();
    for profile in comparison::all_reference_workloads() {
        let m = comparison::solo_run(&profile, 1_000_000_000, &params).derive();
        println!(
            "{:<14} {:>6.2} {:>8.1} {:>8.2} {:>8.1} {:>9.1} {:>8.1}",
            profile.name,
            m.ipc,
            m.l2_mpki,
            m.l3_mpki,
            m.branch_mpki,
            m.frontend_bound * 100.0,
            m.kernel_frac * 100.0
        );
    }

    println!(
        "\nmachine-wide under load: IPC {:.2}, kernel {:.0}%, {:.0} context switches/s — \
         a signature no SPEC-rate run produces.",
        report.machine_metrics.ipc,
        report.machine_metrics.kernel_frac * 100.0,
        report.sched.context_switches as f64 / report.window.as_secs_f64(),
    );
}
