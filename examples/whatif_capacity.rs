//! What-if capacity planning with the analytic model.
//!
//! The simulator answers "what happens"; the analytic MVA model in
//! `scaleup::qnmodel` answers "what would queueing theory predict" in
//! microseconds of compute. This example builds the model from TeaStore's
//! demands, sweeps populations, asks what-if questions (double the WebUI
//! pool? halve the think time?), and draws the curves as ASCII plots.
//!
//! ```text
//! cargo run --release --example whatif_capacity
//! ```

use scaleup::qnmodel::{ClosedModel, Station};
use scaleup::report::ascii_plot;
use simcore::SimDuration;
use teastore::TeaStore;

fn teastore_model(store: &TeaStore, webui_pool: usize) -> ClosedModel {
    let app = store.app();
    let demand = app.mean_demand_per_service_us();
    let mut model =
        ClosedModel::new(SimDuration::from_millis(10)).with_delay(SimDuration::from_micros(400)); // client + RPC wire time
    for (svc, spec) in app.services().iter().enumerate() {
        if demand[svc] <= 0.0 {
            continue;
        }
        let servers = if spec.name == "webui" {
            webui_pool
        } else {
            8 * spec.default_threads
        };
        model = model.station(Station::new(
            &spec.name,
            SimDuration::from_micros_f64(demand[svc]),
            servers,
        ));
    }
    model
}

fn main() {
    let store = TeaStore::browse();
    let populations: Vec<usize> = (0..12)
        .map(|i| {
            let base = 64usize << (i / 2);
            base + (base / 2) * (i % 2)
        })
        .collect();

    println!("baseline: webui pool = 128 threads");
    let base = teastore_model(&store, 128);
    let mut base_pts = Vec::new();
    for &n in &populations {
        let sol = base.solve(n);
        base_pts.push((n as f64, sol.throughput_rps));
    }
    println!(
        "{}",
        ascii_plot("throughput vs users (MVA, baseline)", &base_pts, 60, 12)
    );
    println!(
        "bottleneck bound: {:.0} req/s\n",
        base.bottleneck_bound_rps()
    );

    println!("what-if #1: double the WebUI pool (128 → 256 threads)");
    let big = teastore_model(&store, 256);
    for &n in &[512usize, 2048, 8192] {
        let b = base.solve(n).throughput_rps;
        let w = big.solve(n).throughput_rps;
        println!(
            "  users {n:>5}: {b:>8.0} → {w:>8.0} req/s ({:+.1}%)",
            100.0 * (w / b - 1.0)
        );
    }

    println!("\nwhat-if #2: impatient users (think time 10 ms → 2 ms)");
    let mut fast = teastore_model(&store, 128);
    fast.think = SimDuration::from_millis(2);
    for &n in &[512usize, 2048] {
        let b = base.solve(n).throughput_rps;
        let f = fast.solve(n).throughput_rps;
        println!(
            "  users {n:>5}: {b:>8.0} → {f:>8.0} req/s ({:+.1}%)",
            100.0 * (f / b - 1.0)
        );
    }

    println!(
        "\ncross-check these predictions against the simulator with:\n  \
         cargo run --release -p scaleup-bench --bin repro -- e15"
    );
}
