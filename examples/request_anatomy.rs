//! Request anatomy: trace sampled requests through TeaStore and show where
//! their time goes — worker-pool wait vs. CPU vs. downstream fan-out.
//!
//! ```text
//! cargo run --release --example request_anatomy
//! ```

use loadgen::ClosedLoop;
use microsvc::{Deployment, Engine, EngineParams};
use simcore::{SimDuration, SimTime};
use std::sync::Arc;
use teastore::TeaStore;

fn main() {
    let topo = Arc::new(cputopo::Topology::zen2_2p_128c());
    let store = TeaStore::browse();
    let mix = store.mix();
    let service_names: Vec<String> = store
        .app()
        .services()
        .iter()
        .map(|s| s.name.clone())
        .collect();
    let app = store.into_app();
    let deployment = Deployment::uniform(&app, &topo, 8, 16);

    let params = EngineParams {
        trace_sample_every: Some(500), // every 500th request
        ..EngineParams::default()
    };

    let mut engine = Engine::new(topo, params, app, deployment, 7);
    let mut load = ClosedLoop::new(1024)
        .think_time(SimDuration::from_millis(10))
        .mix(&mix)
        .warmup(SimDuration::from_millis(500))
        .measure(SimDuration::from_secs(1));
    engine.run(&mut load, SimTime::from_secs(30));

    let names: Vec<&str> = service_names.iter().map(String::as_str).collect();
    let complete: Vec<_> = engine
        .traces()
        .iter()
        .filter(|t| t.completed.is_some())
        .collect();
    println!("collected {} complete traces\n", complete.len());

    // Show three representative waterfalls.
    for trace in complete.iter().take(3) {
        println!("{}", trace.waterfall(&names));
    }

    // Aggregate: where does a request's time go, per service?
    let mut breakdown = vec![(SimDuration::ZERO, SimDuration::ZERO); names.len()];
    for trace in &complete {
        trace.breakdown_into(&mut breakdown);
    }
    let n = complete.len().max(1) as u64;
    println!("average per request (over {} traces):", complete.len());
    println!("{:<14} {:>12} {:>12}", "service", "pool wait", "cpu time");
    for (i, (wait, cpu)) in breakdown.iter().enumerate() {
        if cpu.is_zero() && wait.is_zero() {
            continue;
        }
        println!("{:<14} {:>12} {:>12}", names[i], *wait / n, *cpu / n);
    }
}
