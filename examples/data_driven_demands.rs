//! Data-driven demands: grow the catalog, watch the store get slower.
//!
//! TeaStore's query costs depend on its data. This example generates three
//! catalog sizes in the embedded relational store (`storedb`), derives the
//! query demands from *measured* operation costs, builds a TeaStore whose
//! store-db demands come from that data, and compares end-to-end results.
//!
//! ```text
//! cargo run --release --example data_driven_demands
//! ```

use scaleup::{placement::Policy, tuner, Lab};
use simcore::Rng;
use teastore::catalog::{Catalog, CostModel, PAGE_SIZE};
use teastore::demands::DemandTable;
use teastore::TeaStore;

fn main() {
    let model = CostModel::default();

    println!("catalog scaling: measured cost of the category-page query");
    println!(
        "{:>12} {:>14} {:>12} {:>14}",
        "products", "rows/page-read", "page cost µs", "last-page µs"
    );
    for products_per_category in [40usize, 100, 400] {
        let catalog = Catalog::generate(&mut Rng::seed_from(42), 16, products_per_category, 1_000);
        let first = catalog.op_category_page(3, 0);
        let last_page = products_per_category / PAGE_SIZE - 1;
        let last = catalog.op_category_page(3, last_page);
        println!(
            "{:>12} {:>14} {:>12.0} {:>14.0}",
            products_per_category,
            first.rows_read,
            model.demand_us(first),
            model.demand_us(last),
        );
    }

    println!("\nhand-calibrated vs data-derived query demands (standard catalog):");
    let mut catalog = Catalog::standard(&mut Rng::seed_from(42));
    let hand = DemandTable::standard();
    let derived = DemandTable::with_catalog_queries(&mut catalog, &model, 1.0);
    println!("{:<16} {:>10} {:>10}", "query", "hand µs", "derived µs");
    for (name, h, d) in [
        ("light lookup", hand.query_light, derived.query_light),
        ("category page", hand.query_products, derived.query_products),
        ("order insert", hand.query_order, derived.query_order),
    ] {
        println!("{:<16} {:>10.0} {:>10.0}", name, h.mean_us, d.mean_us);
    }

    // End-to-end: the derived demands run through the full simulation.
    println!("\nfull simulation with data-derived store demands (1P machine):");
    let mut lab = Lab::paper_machine(7).with_users(1024);
    lab.topo = std::sync::Arc::new(cputopo::Topology::zen2_1p_64c());
    let store = TeaStore::browse();
    let replicas = tuner::proportional_replicas(store.app(), 32);
    let report = lab.run_policy(&store, Policy::Unpinned, &replicas);
    println!("{}", report.summary());
    println!(
        "(store-db busy: {:.1} CPUs — compare with E5 after editing the catalog size)",
        report
            .services
            .iter()
            .find(|s| s.name == "store-db")
            .expect("teastore has a db tier")
            .avg_busy_cpus
    );
}
