//! Placement tuning: the paper's headline experiment as a library workflow.
//!
//! Compares the performance-tuned unpinned baseline against topology-aware
//! pod placement on the 2-socket, 256-logical-CPU machine, then shows the
//! per-service view explaining where the win comes from.
//!
//! ```text
//! cargo run --release --example placement_tuning
//! ```

use scaleup::{placement::Policy, tuner, Lab};
use teastore::TeaStore;

fn main() {
    let lab = Lab::paper_machine(42).with_users(4096);
    let store = TeaStore::browse();
    let replicas = tuner::proportional_replicas(store.app(), 64);

    println!("machine: {}\n", lab.topo.spec().name);

    let baseline = lab.run_policy(&store, Policy::Unpinned, &replicas);
    println!("tuned unpinned baseline:\n{}", baseline.summary());

    let optimized = lab.run_policy(&store, Policy::TopologyAware { ccxs: None }, &[]);
    println!("topology-aware placement:\n{}", optimized.summary());

    let uplift = 100.0 * (optimized.throughput_rps / baseline.throughput_rps - 1.0);
    let lat =
        100.0 * (1.0 - optimized.mean_latency.as_secs_f64() / baseline.mean_latency.as_secs_f64());
    println!("throughput uplift: {uplift:+.1}%   (paper reports +22%)");
    println!("latency reduction: {lat:+.1}%   (paper reports −18%)");

    println!("\nwhy: per-service IPC under each placement");
    println!(
        "{:<14} {:>10} {:>14}",
        "service", "baseline", "topology-aware"
    );
    for (b, o) in baseline.services.iter().zip(&optimized.services) {
        if b.counters.instructions == 0 {
            continue;
        }
        println!(
            "{:<14} {:>10.2} {:>14.2}",
            b.name, b.metrics.ipc, o.metrics.ipc
        );
    }
    println!(
        "\nscheduler: migrations/s {:.0} → {:.0}, context switches/s {:.0} → {:.0}",
        baseline.sched.migrations as f64 / baseline.window.as_secs_f64(),
        optimized.sched.migrations as f64 / optimized.window.as_secs_f64(),
        baseline.sched.context_switches as f64 / baseline.window.as_secs_f64(),
        optimized.sched.context_switches as f64 / optimized.window.as_secs_f64(),
    );
}
