//! Capacity planning: find the load knee and tune replica counts.
//!
//! Sweeps the offered closed-loop load over the TeaStore deployment,
//! locates the knee (where p95 latency departs from its floor), then runs
//! the bottleneck-driven replica tuner — the workflow an operator would use
//! before buying bigger machines.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use scaleup::{placement::Policy, tuner, Lab};
use simcore::SimDuration;
use teastore::TeaStore;

fn main() {
    let lab = Lab::paper_machine(7);
    let store = TeaStore::browse();
    let replicas = tuner::proportional_replicas(store.app(), 32);
    println!("deployment: replicas {replicas:?} (proportional seeding, budget 32)\n");

    println!("load sweep:");
    println!(
        "{:>7} {:>10} {:>10} {:>10} {:>7}",
        "users", "req/s", "mean", "p95", "util%"
    );
    let mut knee: Option<u64> = None;
    let mut floor_p95: Option<SimDuration> = None;
    for users in [128u64, 256, 512, 1024, 2048, 4096] {
        let report = lab
            .clone()
            .with_users(users)
            .run_policy(&store, Policy::Unpinned, &replicas);
        println!(
            "{:>7} {:>10.0} {:>10} {:>10} {:>7.1}",
            users,
            report.throughput_rps,
            report.mean_latency,
            report.latency_p95,
            report.cpu_utilization * 100.0
        );
        let p95 = report.latency_p95;
        match floor_p95 {
            None => floor_p95 = Some(p95),
            Some(floor) => {
                if knee.is_none() && p95 > floor.mul_f64(2.0) {
                    knee = Some(users);
                }
            }
        }
    }
    match knee {
        Some(users) => println!("\nknee: p95 doubles somewhere below {users} users"),
        None => println!("\nno knee found in the swept range"),
    }

    println!("\nrunning the bottleneck-driven tuner (3 rounds)...");
    let outcome = tuner::tune(&lab.clone().with_users(2048), &store, &replicas, 3);
    println!("tuned replicas: {:?}", outcome.replicas);
    println!(
        "throughput trajectory: {:?} req/s",
        outcome
            .throughput_history
            .iter()
            .map(|t| t.round())
            .collect::<Vec<_>>()
    );
}
