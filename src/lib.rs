//! Umbrella crate for the TeaStore scale-up laboratory.
//!
//! This crate re-exports every subsystem of the reproduction of
//! *"Characterizing the Scale-Up Performance of Microservices using
//! TeaStore"* (IISWC 2020) so downstream code can depend on one crate:
//!
//! * [`simcore`] — the deterministic discrete-event engine.
//! * [`cputopo`] — the machine: sockets / NUMA / CCD / CCX / cores / SMT.
//! * [`oskernel`] — the OS scheduler simulation.
//! * [`uarch`] — the microarchitectural contention and counter model.
//! * [`storedb`] — the embedded relational store (MySQL stand-in).
//! * [`microsvc`] — the microservice runtime and simulation engine.
//! * [`teastore`] — the TeaStore application model.
//! * [`loadgen`] — closed/open-loop, shaped and replayed load.
//! * [`scaleup`] — the paper's contribution: scale-up analysis, placement
//!   policies, tuning, USL fitting, analytic validation, reporting.
//!
//! # Example
//!
//! The headline experiment in six lines:
//!
//! ```no_run
//! use teastore_scaleup::scaleup::{placement::Policy, tuner, Lab};
//! use teastore_scaleup::teastore::TeaStore;
//!
//! let lab = Lab::paper_machine(42);
//! let store = TeaStore::browse();
//! let replicas = tuner::proportional_replicas(store.app(), 64);
//! let baseline = lab.run_policy(&store, Policy::Unpinned, &replicas);
//! let optimized = lab.run_policy(&store, Policy::TopologyAware { ccxs: None }, &[]);
//! assert!(optimized.throughput_rps > baseline.throughput_rps);
//! ```
//!
//! See `README.md` for the tour, `DESIGN.md` for the system inventory and
//! experiment index, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use cputopo;
pub use loadgen;
pub use microsvc;
pub use oskernel;
pub use scaleup;
pub use simcore;
pub use storedb;
pub use teastore;
pub use uarch;

#[cfg(test)]
mod tests {
    #[test]
    fn umbrella_reexports_line_up() {
        // The re-exports must expose the same types (not parallel copies):
        // a Topology built here is accepted by the scheduler there.
        let topo = std::sync::Arc::new(cputopo::Topology::desktop_8c());
        let sched = oskernel::Scheduler::new(topo.clone(), oskernel::SchedParams::default());
        assert_eq!(sched.topology().num_cpus(), 16);
    }
}
