//! Cross-crate integration: placement policies and the headline result.

use cputopo::Topology;
use scaleup::{placement::Policy, tuner, Lab};
use simcore::SimDuration;
use teastore::TeaStore;

fn lab(seed: u64, users: u64) -> Lab {
    let mut lab = Lab::paper_machine(seed).with_users(users);
    lab.warmup = SimDuration::from_millis(400);
    lab.measure = SimDuration::from_millis(1000);
    lab
}

#[test]
fn every_policy_yields_a_valid_runnable_deployment() {
    let store = TeaStore::browse();
    let replicas = tuner::proportional_replicas(store.app(), 24);
    for topo in [
        Topology::zen2_2p_128c(),
        Topology::zen2_1p_64c(),
        Topology::desktop_8c(),
    ] {
        for policy in [
            Policy::Unpinned,
            Policy::Packed,
            Policy::SpreadSockets,
            Policy::CcxAware,
            Policy::NumaAware,
            Policy::TopologyAware { ccxs: None },
        ] {
            let reps = if matches!(policy, Policy::TopologyAware { .. }) {
                vec![]
            } else {
                replicas.clone()
            };
            let placed = policy.deploy(store.app(), &topo, &reps);
            placed.deployment.validate(store.app(), &topo);
        }
    }
}

#[test]
fn headline_topology_aware_beats_tuned_baseline() {
    // The paper's claim, in-band: +22% throughput over the tuned baseline.
    // With the shortened integration-test window we accept +10%..+40%.
    let lab = lab(42, 4096);
    let store = TeaStore::browse();
    let replicas = tuner::proportional_replicas(store.app(), 64);
    let baseline = lab.run_policy(&store, Policy::Unpinned, &replicas);
    let optimized = lab.run_policy(&store, Policy::TopologyAware { ccxs: None }, &[]);
    let uplift = optimized.throughput_rps / baseline.throughput_rps - 1.0;
    assert!(
        (0.10..0.40).contains(&uplift),
        "topology-aware uplift {:.1}% outside the expected band (baseline {:.0}, topo {:.0})",
        uplift * 100.0,
        baseline.throughput_rps,
        optimized.throughput_rps
    );
    // And latency improves alongside.
    assert!(
        optimized.mean_latency < baseline.mean_latency,
        "latency must improve: {} vs {}",
        optimized.mean_latency,
        baseline.mean_latency
    );
}

#[test]
fn pinning_reduces_migrations() {
    let lab = lab(7, 1024);
    let store = TeaStore::browse();
    let replicas = tuner::proportional_replicas(store.app(), 40);
    let unpinned = lab.run_policy(&store, Policy::Unpinned, &replicas);
    let ccx = lab.run_policy(&store, Policy::CcxAware, &replicas);
    let m_unpinned = unpinned.sched.migrations as f64 / unpinned.window.as_secs_f64();
    let m_ccx = ccx.sched.migrations as f64 / ccx.window.as_secs_f64();
    assert!(
        m_ccx < 0.7 * m_unpinned,
        "CCX pinning should slash migrations: {m_unpinned:.0}/s → {m_ccx:.0}/s"
    );
}

#[test]
fn numa_aware_keeps_memory_local_and_helps() {
    let lab = lab(8, 2048);
    let store = TeaStore::browse();
    let replicas = tuner::proportional_replicas(store.app(), 64);
    let unpinned = lab.run_policy(&store, Policy::Unpinned, &replicas);
    let numa = lab.run_policy(&store, Policy::NumaAware, &replicas);
    assert!(
        numa.throughput_rps > unpinned.throughput_rps,
        "NUMA-aware should beat unpinned: {:.0} vs {:.0}",
        numa.throughput_rps,
        unpinned.throughput_rps
    );
}

#[test]
fn topology_aware_works_on_one_socket_too() {
    let mut lab = lab(9, 2048);
    lab.topo = std::sync::Arc::new(Topology::zen2_1p_64c());
    let store = TeaStore::browse();
    let replicas = tuner::proportional_replicas(store.app(), 32);
    let baseline = lab.run_policy(&store, Policy::Unpinned, &replicas);
    let optimized = lab.run_policy(&store, Policy::TopologyAware { ccxs: None }, &[]);
    // One socket removes the NUMA term; cache and locality still help.
    assert!(
        optimized.throughput_rps > baseline.throughput_rps,
        "{:.0} vs {:.0}",
        optimized.throughput_rps,
        baseline.throughput_rps
    );
}
