//! Differential battery for the checkpoint/branch layer (`simcore::snap` +
//! engine wiring): a resumed simulation must be indistinguishable from one
//! that never stopped, forks must be deterministic, and damaged snapshots
//! must be rejected — never silently mis-resumed.
//!
//! Three layers of proof:
//! 1. Golden-hash identity — the quick-config experiment tables, re-run
//!    with `Lab::checkpoint` (snapshot at warm-up end + resume into a fresh
//!    engine), hash to the *same* recorded values as the straight runs in
//!    tests/golden.rs. Any serialization gap in any subsystem trips these.
//! 2. Branch determinism — the same fork salt replays the same trajectory;
//!    different salts diverge; the jobs-1-vs-8 sweep invariant survives the
//!    checkpoint dance.
//! 3. Envelope robustness — proptest round-trips (save → load → save is
//!    byte-stable at arbitrary checkpoint instants) and rejection of
//!    truncated, corrupted, and version-bumped files with a diagnostic.

use loadgen::ClosedLoop;
use microsvc::{Deployment, Engine, EngineParams, RunReport};
use proptest::prelude::*;
use scaleup::{placement::Policy, tuner, BranchOverrides, Lab};
use scaleup_bench::{experiments as exp, Config};
use simcore::snap::fnv64;
use simcore::{SimDuration, SimTime, SnapError, SnapReader, SnapWriter};
use std::sync::{Arc, Mutex};
use teastore::TeaStore;

/// Serializes tests that touch the global `scaleup::par` worker count.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

/// FNV-1a over a rendered table (same constants as tests/golden.rs).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ------------------------------------------------ 1. golden-hash identity

#[test]
fn checkpointed_e3_e8_match_the_straight_run_golden_hashes() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut config = Config::quick(42);
    config.lab.checkpoint = true;
    let e3 = exp::e3(&config).table;
    let e8 = exp::e8(&config).table;
    // The straight-run values recorded in tests/golden.rs: a checkpointed
    // run that differs in any byte has lost state across the snapshot.
    assert_eq!(
        fnv1a(&e3),
        0xb1ff_8356_b91c_cc85,
        "checkpointed E3 diverged from the straight run; hash {:#018x}, table:\n{e3}",
        fnv1a(&e3)
    );
    assert_eq!(
        fnv1a(&e8),
        0x623d_25c1_8fc8_4803,
        "checkpointed E8 diverged from the straight run; hash {:#018x}, table:\n{e8}",
        fnv1a(&e8)
    );
}

#[test]
fn checkpointed_fault_experiments_match_the_straight_run_golden_hashes() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut config = Config::quick(42);
    config.lab.checkpoint = true;
    // E18/E19 carry fault plans (crashes, slowdowns, reply drops) and the
    // resilience layer — the snapshot must capture breaker state, fault
    // RNG streams, and in-flight timeout timers to replay them.
    let e18 = exp::e18(&config).table;
    let e19 = exp::e19(&config).table;
    assert_eq!(
        fnv1a(&e18),
        0x6abd_466c_8432_14c5,
        "checkpointed E18 diverged from the straight run; hash {:#018x}, table:\n{e18}",
        fnv1a(&e18)
    );
    assert_eq!(
        fnv1a(&e19),
        0x6dfe_8d00_0099_bf2a,
        "checkpointed E19 diverged from the straight run; hash {:#018x}, table:\n{e19}",
        fnv1a(&e19)
    );
}

#[test]
fn checkpointed_overload_experiments_match_the_straight_run_golden_hashes() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut config = Config::quick(42);
    config.lab.checkpoint = true;
    // E22/E23 run open-loop under overload control: AIMD limiters, retry
    // budgets, priority shedding, and the arrival stream all cross the
    // snapshot here.
    let e22 = exp::e22(&config).table;
    let e23 = exp::e23(&config).table;
    assert_eq!(
        fnv1a(&e22),
        0xe9d7_52fe_b2b9_97d3,
        "checkpointed E22 diverged from the straight run; hash {:#018x}, table:\n{e22}",
        fnv1a(&e22)
    );
    assert_eq!(
        fnv1a(&e23),
        0x20c7_735a_8ca3_4ed1,
        "checkpointed E23 diverged from the straight run; hash {:#018x}, table:\n{e23}",
        fnv1a(&e23)
    );
}

// ------------------------------------------------- 2. branch determinism

/// The quick TeaStore cell every Lab-level test here shares.
fn cell() -> (Lab, TeaStore, Vec<usize>) {
    let lab = Lab::small(42).with_users(64);
    let store = TeaStore::with_demand_scale(0.25);
    let replicas = tuner::proportional_replicas(store.app(), 12);
    (lab, store, replicas)
}

fn report_key(r: &RunReport) -> (u64, u64, u64, u64, u64) {
    (
        r.completed,
        r.events_processed,
        r.mean_latency.as_nanos(),
        r.latency_p99.as_nanos(),
        r.throughput_rps.to_bits(),
    )
}

#[test]
fn same_branch_salt_forks_identically_different_salts_diverge() {
    let (lab, store, replicas) = cell();
    let placed = Policy::Unpinned.deploy(store.app(), &lab.topo, &replicas);
    let bytes = lab.snapshot_app(
        store.app(),
        placed.deployment.clone(),
        placed.lb,
        SimTime::ZERO + lab.warmup,
    );
    let fork = |salt: u64| {
        lab.branch_app(
            store.app(),
            placed.deployment.clone(),
            placed.lb,
            &bytes,
            &BranchOverrides {
                reseed: Some(salt),
                demand_scale: None,
                faults: None,
            },
        )
        .expect("fork from an in-process snapshot")
    };
    let a1 = fork(7);
    let a2 = fork(7);
    let b = fork(8);
    assert_eq!(
        report_key(&a1),
        report_key(&a2),
        "the same fork salt must replay the same trajectory"
    );
    assert_ne!(
        report_key(&a1),
        report_key(&b),
        "different fork salts must diverge"
    );
    assert!(a1.completed > 0 && b.completed > 0);
}

#[test]
fn checkpointed_sweep_is_byte_identical_at_any_worker_count() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut config = Config::quick(42);
    config.lab.checkpoint = true;
    // The jobs-1-vs-8 invariant of tests/golden.rs, with every run routed
    // through snapshot + resume: worker scheduling must not perturb the
    // checkpoint dance either.
    scaleup::par::set_jobs(1);
    let seq = exp::e3(&config).table;
    scaleup::par::set_jobs(8);
    let par = exp::e3(&config).table;
    scaleup::par::set_jobs(0); // restore auto
    assert_eq!(
        seq, par,
        "checkpointed E3 differs between --jobs 1 and --jobs 8"
    );
}

// --------------------------------------------- 3. envelope & round-trips

/// One desktop-scale engine + driver cell for direct snapshot plumbing.
fn build_cell(users: u64, coalesce_us: u64) -> (Engine, ClosedLoop) {
    let topo = Arc::new(cputopo::Topology::desktop_8c());
    let store = TeaStore::with_demand_scale(0.25);
    let mix = store.mix();
    let app = store.into_app();
    let deployment = Deployment::uniform(&app, &topo, 2, 4);
    let engine = Engine::new(topo, EngineParams::default(), app, deployment, 11);
    let mut load = ClosedLoop::new(users)
        .think_time(SimDuration::from_millis(5))
        .mix(&mix)
        .warmup(SimDuration::from_millis(100));
    if coalesce_us > 0 {
        load = load.coalesce(SimDuration::from_micros(coalesce_us));
    }
    (engine, load)
}

/// Runs a fresh cell to `t_us` and serializes engine + driver.
fn snapshot_at(users: u64, coalesce_us: u64, t_us: u64) -> Vec<u8> {
    let (mut engine, mut load) = build_cell(users, coalesce_us);
    engine.run(&mut load, SimTime::ZERO + SimDuration::from_micros(t_us));
    let mut w = SnapWriter::new();
    engine.snap_save(&mut w);
    load.snap_save(&mut w);
    w.finish()
}

/// Restores `bytes` into a fresh cell and serializes it again untouched.
fn resave(bytes: &[u8], users: u64, coalesce_us: u64) -> Vec<u8> {
    let (mut engine, mut load) = build_cell(users, coalesce_us);
    let mut r = SnapReader::new(bytes).expect("well-formed snapshot");
    engine.snap_restore(&mut r).expect("same engine config");
    load.snap_restore(&mut r).expect("same driver config");
    let mut w = SnapWriter::new();
    engine.snap_save(&mut w);
    load.snap_save(&mut w);
    w.finish()
}

#[test]
fn coalesced_driver_snapshot_resumes_identically() {
    // The 1 ms wake-coalescing path batches users into shared timers; its
    // bucket state and pending wakeups must survive the checkpoint.
    let horizon = SimTime::ZERO + SimDuration::from_millis(600);
    let (mut straight_engine, mut straight_load) = build_cell(48, 1_000);
    straight_engine.run(&mut straight_load, horizon);
    let straight = straight_engine.report();

    let bytes = snapshot_at(48, 1_000, 250_000);
    let (mut engine, mut load) = build_cell(48, 1_000);
    let mut r = SnapReader::new(&bytes).expect("well-formed snapshot");
    engine.snap_restore(&mut r).expect("same engine config");
    load.snap_restore(&mut r).expect("same driver config");
    engine.run_resumed(&mut load, horizon);
    let resumed = engine.report();

    assert_eq!(report_key(&straight), report_key(&resumed));
    assert!(straight.completed > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn snapshot_load_snapshot_is_byte_stable(
        users in 4u64..48,
        grain_ms in 0u64..2,
        t_us in 1_000u64..400_000,
    ) {
        // A snapshot restored and immediately re-saved must reproduce the
        // original file byte for byte — the load path may not normalize,
        // reorder, or lose anything at any checkpoint instant.
        let grain = grain_ms * 1_000;
        let bytes = snapshot_at(users, grain, t_us);
        let resaved = resave(&bytes, users, grain);
        prop_assert_eq!(bytes, resaved);
    }

    #[test]
    fn truncated_snapshots_are_rejected(
        t_us in 1_000u64..100_000,
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = snapshot_at(8, 0, t_us);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        // Every proper prefix must fail the envelope check; none may
        // silently restore.
        prop_assert!(SnapReader::new(&bytes[..cut]).is_err());
    }

    #[test]
    fn corrupted_snapshots_are_rejected(
        t_us in 1_000u64..100_000,
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = snapshot_at(8, 0, t_us);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        // A single flipped byte anywhere must be caught by the magic,
        // version, trailer, or checksum validation.
        prop_assert!(SnapReader::new(&bytes).is_err());
    }
}

#[test]
fn version_bumped_snapshots_are_rejected_with_a_diagnostic() {
    let mut bytes = snapshot_at(8, 0, 50_000);
    // Bump the format version and re-seal the checksum, simulating a file
    // written by a future incompatible build: the reader must refuse it
    // (bump-and-reject policy — no silent migration).
    let next = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) + 1;
    bytes[4..8].copy_from_slice(&next.to_le_bytes());
    let trailer_at = bytes.len() - 8;
    let reseal = fnv64(&bytes[..trailer_at]);
    bytes[trailer_at..].copy_from_slice(&reseal.to_le_bytes());
    match SnapReader::new(&bytes) {
        Err(SnapError::BadVersion { found, expected }) => {
            assert_eq!(found, next);
            assert_eq!(expected, next - 1);
        }
        other => panic!("expected BadVersion, got {other:?}"),
    }
}

#[test]
fn resume_into_a_different_population_is_rejected_not_mis_resumed() {
    let (lab, store, replicas) = cell();
    let placed = Policy::Unpinned.deploy(store.app(), &lab.topo, &replicas);
    let bytes = lab.snapshot_app(
        store.app(),
        placed.deployment.clone(),
        placed.lb,
        SimTime::ZERO + lab.warmup,
    );
    // Same machine and app, different user population: the driver
    // fingerprint must catch it.
    let other = lab.clone().with_users(32);
    let err = other
        .resume_app(store.app(), placed.deployment, placed.lb, &bytes)
        .expect_err("a 64-user snapshot must not resume into a 32-user driver");
    assert!(
        matches!(err, SnapError::Corrupt(_)),
        "expected a config-mismatch diagnostic, got {err:?}"
    );
}
