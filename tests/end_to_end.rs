//! Cross-crate integration: the full TeaStore stack on the paper machine.
//!
//! These tests exercise every crate at once — topology → scheduler → µarch
//! model → microservice engine → load generator → analysis — and assert the
//! *shapes* the study depends on.

use scaleup::{placement::Policy, tuner, Lab};
use simcore::SimDuration;
use teastore::TeaStore;

/// A short-window paper-machine lab for integration testing.
fn lab(seed: u64, users: u64) -> Lab {
    let mut lab = Lab::paper_machine(seed).with_users(users);
    lab.warmup = SimDuration::from_millis(400);
    lab.measure = SimDuration::from_millis(800);
    lab
}

#[test]
fn full_stack_runs_and_reports() {
    let lab = lab(1, 512);
    let store = TeaStore::browse();
    let replicas = tuner::proportional_replicas(store.app(), 40);
    let report = lab.run_policy(&store, Policy::Unpinned, &replicas);

    assert!(report.completed > 1_000, "completed {}", report.completed);
    assert!(report.throughput_rps > 1_000.0);
    assert!(report.cpu_utilization > 0.02 && report.cpu_utilization <= 1.0);
    // Latency percentiles are ordered.
    assert!(report.latency_p50 <= report.latency_p90);
    assert!(report.latency_p90 <= report.latency_p95);
    assert!(report.latency_p95 <= report.latency_p99);
    // Every demanded service did work; the registry did none.
    let registry = store.services().registry.index();
    for (i, s) in report.services.iter().enumerate() {
        if i == registry {
            assert_eq!(s.jobs_completed, 0, "registry is off the hot path");
        } else {
            assert!(s.jobs_completed > 0, "{} did no work", s.name);
        }
    }
}

#[test]
fn interactive_response_time_law_holds() {
    // Closed-loop sanity: N = X · (R + Z) within tolerance.
    let users = 512u64;
    let lab = lab(2, users);
    let store = TeaStore::browse();
    let replicas = tuner::proportional_replicas(store.app(), 40);
    let report = lab.run_policy(&store, Policy::Unpinned, &replicas);
    let x = report.throughput_rps;
    let r = report.mean_latency.as_secs_f64();
    let z = lab.think.as_secs_f64();
    let n_est = x * (r + z);
    let err = (n_est - users as f64).abs() / users as f64;
    assert!(
        err < 0.2,
        "interactive law: X(R+Z) = {n_est:.0} vs N = {users} (err {err:.2})"
    );
}

#[test]
fn webui_is_the_busiest_service_under_browse_mix() {
    let lab = lab(3, 1024);
    let store = TeaStore::browse();
    let replicas = tuner::proportional_replicas(store.app(), 40);
    let report = lab.run_policy(&store, Policy::Unpinned, &replicas);
    let webui = store.services().webui.index();
    let busiest = report
        .services
        .iter()
        .enumerate()
        .max_by(|a, b| {
            a.1.avg_busy_cpus
                .partial_cmp(&b.1.avg_busy_cpus)
                .expect("finite")
        })
        .map(|(i, _)| i)
        .expect("services exist");
    assert_eq!(busiest, webui, "webui must dominate CPU consumption");
}

#[test]
fn saturation_throughput_is_load_independent() {
    // Past the knee, adding users must not change throughput much.
    let store = TeaStore::browse();
    let replicas = tuner::proportional_replicas(store.app(), 64);
    let x1 = lab(4, 2048)
        .run_policy(&store, Policy::Unpinned, &replicas)
        .throughput_rps;
    let x2 = lab(4, 4096)
        .run_policy(&store, Policy::Unpinned, &replicas)
        .throughput_rps;
    let ratio = x2 / x1;
    assert!(
        (0.93..1.07).contains(&ratio),
        "saturated throughput moved with load: {x1:.0} → {x2:.0}"
    );
}

#[test]
fn request_classes_complete_in_mix_proportions() {
    let lab = lab(5, 512);
    let store = TeaStore::browse();
    let replicas = tuner::proportional_replicas(store.app(), 40);
    let report = lab.run_policy(&store, Policy::Unpinned, &replicas);
    let total: u64 = report.per_class.iter().map(|(_, n, _)| n).sum();
    assert!(total > 0);
    for ((_, n, _), class) in report.per_class.iter().zip(store.app().classes()) {
        let frac = *n as f64 / total as f64;
        assert!(
            (frac - class.weight).abs() < 0.05,
            "class {} completed {frac:.3} of traffic, mix says {:.3}",
            class.name,
            class.weight
        );
    }
}

#[test]
fn machine_ipc_is_microservice_like() {
    // The characterization claim end-to-end: the machine-wide IPC under the
    // browse mix sits well below compute-suite levels.
    let lab = lab(6, 2048);
    let store = TeaStore::browse();
    let replicas = tuner::proportional_replicas(store.app(), 64);
    let report = lab.run_policy(&store, Policy::Unpinned, &replicas);
    let ipc = report.machine_metrics.ipc;
    assert!((0.2..1.2).contains(&ipc), "machine IPC {ipc}");
    assert!(
        report.machine_metrics.kernel_frac > 0.1,
        "kernel share too low"
    );
    assert!(
        report.sched.context_switches > 10_000,
        "context-switch heavy workload expected"
    );
}
