//! Battery for the sharded parallel-in-run engine (`microsvc::shard`).
//!
//! The determinism contract (see DESIGN.md "Sharded execution"):
//!
//! 1. `--shards 1` routes through the untouched serial engine — byte-identical
//!    to every recorded golden, trivially.
//! 2. For `N > 1` the results are a deterministic function of the *shard
//!    count* (cells partition users and carry per-cell RNG streams), but are
//!    invariant across worker-thread counts, reruns, and snapshot
//!    round-trips. Per-shard-count golden hashes pin E3/E8/E18/E22 below.
//! 3. A mid-run snapshot taken at a window barrier resumes into the same
//!    trajectory bit-for-bit.

use microsvc::WindowPolicy;
use scaleup_bench::{experiments as exp, Config};
use simcore::SimDuration;
use std::sync::Mutex;

/// Serializes tests that touch the global `scaleup::par` worker count.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The quick config with the lab sharded `shards` ways (0 workers = one per
/// host core; the results must not depend on it).
fn sharded_config(shards: u32, workers: usize) -> Config {
    let mut config = Config::quick(42);
    config.lab.shards = shards;
    config.lab.shard_workers = workers;
    config
}

fn assert_golden(name: &str, shards: u32, table: &str, want: u64) {
    assert_eq!(
        fnv1a(table),
        want,
        "{name} at {shards} shards drifted; new hash {:#018x}, table:\n{table}",
        fnv1a(table)
    );
}

#[test]
fn shards_1_is_the_legacy_engine_byte_for_byte() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // `--shards 1` must not merely hash the same — it must be the very same
    // code path, so the tables match the untouched config byte for byte
    // (the recorded serial goldens in tests/golden.rs then pin both).
    let legacy = Config::quick(42);
    let one = sharded_config(1, 1);
    assert_eq!(exp::e3(&legacy).table, exp::e3(&one).table);
    assert_eq!(exp::e22(&legacy).table, exp::e22(&one).table);
}

/// Recorded per-shard-count golden hashes for the E3/E8/E18/E19/E22
/// battery, quick config, seed 42: `(shards, e3, e8, e18, e19, e22)`. Each
/// row was verified stable across reruns and worker counts before
/// recording. E19 (crash & recovery) completes the resilience pair: its
/// runs route through the same sharded cells, so the crash/restart events
/// must land identically at every shard count.
const SHARDED_GOLDENS: &[(u32, u64, u64, u64, u64, u64)] = &[
    (2, 0xc8bc_4dc2_44ab_c544, 0xfe6a_cb2e_8c29_1809, 0x4c65_0bd7_8e92_0c2c, 0xde07_0902_30d6_7508, 0x8aa8_f4bf_1580_ca88),
    (4, 0x4d32_7a4f_873c_486a, 0x465c_1968_a117_89e8, 0x7280_de87_3bf0_84c1, 0x82cb_bf32_193d_703d, 0x5e5f_a7aa_8e28_9d82),
    (8, 0xd077_51e7_b919_ee0d, 0x49b8_3055_293c_4425, 0xae74_cadf_7bce_e756, 0xe673_5a30_996a_b3aa, 0x6a3d_9a32_5f1b_62ff),
];

fn battery(shards: u32, e3: u64, e8: u64, e18: u64, e19: u64, e22: u64) {
    let config = sharded_config(shards, 0);
    assert_golden("E3", shards, &exp::e3(&config).table, e3);
    assert_golden("E8", shards, &exp::e8(&config).table, e8);
    assert_golden("E18", shards, &exp::e18(&config).table, e18);
    assert_golden("E19", shards, &exp::e19(&config).table, e19);
    assert_golden("E22", shards, &exp::e22(&config).table, e22);
}

#[test]
fn sharded_battery_matches_goldens_at_2_shards() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let g = SHARDED_GOLDENS[0];
    battery(g.0, g.1, g.2, g.3, g.4, g.5);
}

#[test]
fn sharded_battery_matches_goldens_at_4_shards() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let g = SHARDED_GOLDENS[1];
    battery(g.0, g.1, g.2, g.3, g.4, g.5);
}

#[test]
fn sharded_battery_matches_goldens_at_8_shards() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let g = SHARDED_GOLDENS[2];
    battery(g.0, g.1, g.2, g.3, g.4, g.5);
}

#[test]
fn sharded_tables_are_identical_at_any_worker_count() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The worker count only changes *which thread* advances a cell, never
    // the merge order (messages sort by (arrival, src, seq) at the
    // barrier). Three cells also exercise the user-remainder split.
    for shards in [2u32, 3] {
        let serial = sharded_config(shards, 1);
        let wide = sharded_config(shards, 4);
        assert_eq!(
            exp::e3(&serial).table,
            exp::e3(&wide).table,
            "E3 at {shards} shards differs between 1 and 4 workers"
        );
        assert_eq!(
            exp::e22(&serial).table,
            exp::e22(&wide).table,
            "E22 at {shards} shards differs between 1 and 4 workers"
        );
    }
}

#[test]
fn sharded_checkpoint_roundtrip_is_invisible() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The checkpoint detour saves the whole sharded run at the end-of-warmup
    // barrier, rebuilds every cell from scratch, restores, and resumes. The
    // report must match the straight run bit for bit.
    let config = sharded_config(2, 0);
    let app = config.store.app();
    let replicas = config.baseline_replicas();
    let placed =
        scaleup::placement::Policy::Unpinned.deploy(app, &config.lab.topo, &replicas);
    let straight = config
        .lab
        .run_app(app, placed.deployment.clone(), placed.lb);
    let mut ckpt_lab = config.lab.clone();
    ckpt_lab.checkpoint = true;
    let resumed = ckpt_lab.run_app(app, placed.deployment, placed.lb);
    assert_eq!(straight.completed, resumed.completed);
    assert_eq!(straight.events_processed, resumed.events_processed);
    assert_eq!(straight.mean_latency, resumed.mean_latency);
    assert_eq!(straight.latency_p99, resumed.latency_p99);
    assert_eq!(
        straight.throughput_rps.to_bits(),
        resumed.throughput_rps.to_bits(),
        "sharded checkpoint round-trip diverged: {} vs {}",
        straight.throughput_rps,
        resumed.throughput_rps
    );
    assert_eq!(straight.summary(), resumed.summary());
}

#[test]
fn speculative_battery_matches_conservative_goldens() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Speculation must be invisible: the very same per-shard-count goldens
    // the conservative battery pins, now with fixed 32-window rounds and
    // micro-rollback on every late cross-cell message.
    for &(shards, e3, e8, e18, e19, e22) in SHARDED_GOLDENS {
        let mut config = sharded_config(shards, 0);
        config.lab.shard_policy = WindowPolicy::Speculative { cap: 32 };
        assert_golden("E3 speculative", shards, &exp::e3(&config).table, e3);
        assert_golden("E8 speculative", shards, &exp::e8(&config).table, e8);
        assert_golden("E18 speculative", shards, &exp::e18(&config).table, e18);
        assert_golden("E19 speculative", shards, &exp::e19(&config).table, e19);
        assert_golden("E22 speculative", shards, &exp::e22(&config).table, e22);
    }
}

#[test]
fn adaptive_battery_matches_conservative_goldens() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Adaptive widening (geometric growth, snap-back on traffic) must be
    // equally invisible; one shard count keeps the suite's runtime sane —
    // the policy proptests below cover the rest of the space.
    let (shards, e3, _, _, _, e22) = SHARDED_GOLDENS[1];
    let mut config = sharded_config(shards, 0);
    config.lab.shard_policy = WindowPolicy::Adaptive { cap: 32 };
    assert_golden("E3 adaptive", shards, &exp::e3(&config).table, e3);
    assert_golden("E22 adaptive", shards, &exp::e22(&config).table, e22);
}

mod lookahead_props {
    use super::*;
    use microsvc::Deployment;
    use proptest::prelude::*;
    use scaleup::Lab;

    /// One tiny sharded run with arbitrary lookahead/cross-traffic knobs.
    /// The returned footprint includes the float *bits* of every headline
    /// metric, so "equal" means byte-identical, not approximately equal.
    fn run(
        latency_us: u64,
        cross: u32,
        shards: u32,
        users: u64,
        workers: usize,
        seed: u64,
        policy: WindowPolicy,
    ) -> String {
        let store = teastore::TeaStore::with_demand_scale(0.25);
        let mut lab = Lab::small(seed).with_users(users).with_shards(shards);
        lab.shard_cross_permille = cross;
        lab.shard_latency = SimDuration::from_micros(latency_us);
        lab.shard_workers = workers;
        lab.shard_policy = policy;
        lab.warmup = SimDuration::from_millis(100);
        lab.measure = SimDuration::from_millis(300);
        let app = store.app();
        let deployment = Deployment::uniform(app, &lab.topo, 2, 4);
        let report = lab.run_app(app, deployment, microsvc::LbPolicy::RoundRobin);
        format!(
            "{} completed={} ev={} mean={} p99={} thr={:016x}",
            report.summary(),
            report.completed,
            report.events_processed,
            report.mean_latency,
            report.latency_p99,
            report.throughput_rps.to_bits()
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Any lookahead grain (window = cross-cell latency), any cross-cell
        /// intensity, any cell count: the run must complete without tripping
        /// the engine's causality assertion (`inject_timer_at` panics on an
        /// arrival before the cell's clock — per-shard time-ordering), and
        /// the result must be a pure function of the knobs, not the worker
        /// interleaving.
        #[test]
        fn random_lookahead_grains_preserve_causality_and_determinism(
            latency_us in 100u64..5_000,
            cross in 0u32..300,
            shards in 1u32..5,
            users in 8u64..40,
            seed in 0u64..1_000,
        ) {
            let a = run(latency_us, cross, shards, users, 1, seed, WindowPolicy::Conservative);
            let b = run(latency_us, cross, shards, users, 4, seed, WindowPolicy::Conservative);
            prop_assert_eq!(a, b);
        }

        /// Window policy is pure overhead accounting: for any cross-traffic
        /// rate and round-width cap, the adaptive and speculative runs match
        /// the conservative run byte for byte — float bits included — and
        /// stay invariant between 1 and 8 workers.
        #[test]
        fn window_policies_are_byte_identical(
            latency_us in 100u64..5_000,
            cross in 0u32..300,
            shards in 2u32..5,
            users in 8u64..40,
            seed in 0u64..1_000,
            cap in 2u32..48,
        ) {
            let conservative =
                run(latency_us, cross, shards, users, 1, seed, WindowPolicy::Conservative);
            let adaptive =
                run(latency_us, cross, shards, users, 8, seed, WindowPolicy::Adaptive { cap });
            let speculative =
                run(latency_us, cross, shards, users, 8, seed, WindowPolicy::Speculative { cap });
            prop_assert_eq!(&conservative, &adaptive);
            prop_assert_eq!(&conservative, &speculative);
        }
    }
}

mod rollback {
    use super::*;
    use loadgen::ClosedLoop;
    use microsvc::{
        mix_seed, Deployment, Engine, EngineParams, ShardSpec, ShardedRun, SyncStats,
    };
    use simcore::SimTime;
    use std::sync::Arc;

    /// A dense little sharded run built directly (the `Lab` wrapper hides
    /// [`ShardedRun::sync_stats`]): 4 cells, heavy cross-traffic, fine
    /// window — a rollback pressure-cooker.
    fn direct(policy: WindowPolicy, workers: usize) -> (String, SyncStats) {
        let store = teastore::TeaStore::with_demand_scale(0.25);
        let app = store.app();
        let topo = Arc::new(cputopo::Topology::desktop_8c());
        let spec = ShardSpec {
            cells: 4,
            cross_permille: 300,
            latency: SimDuration::from_micros(250),
        };
        let mix: Vec<f64> = app.classes().iter().map(|c| c.weight).collect();
        let cells = (0..spec.cells)
            .map(|c| {
                let engine = Engine::new(
                    topo.clone(),
                    EngineParams::default(),
                    app.clone(),
                    Deployment::uniform(app, &topo, 2, 4),
                    mix_seed(42, c),
                );
                let load = ClosedLoop::new(6)
                    .think_time(SimDuration::from_millis(2))
                    .mix(&mix)
                    .warmup(SimDuration::from_millis(50))
                    .measure(SimDuration::from_millis(150));
                (engine, load)
            })
            .collect();
        let mut run = ShardedRun::new(cells, spec).with_policy(policy);
        run.run(SimTime::ZERO + SimDuration::from_millis(800), workers);
        let report = run.report();
        let footprint = format!(
            "{} completed={} ev={} mean={} p99={} thr={:016x}",
            report.summary(),
            report.completed,
            report.events_processed,
            report.mean_latency,
            report.latency_p99,
            report.throughput_rps.to_bits()
        );
        (footprint, run.sync_stats())
    }

    #[test]
    fn speculation_actually_rolls_back_and_still_matches() {
        let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Guard against a vacuous differential: under 300‰ cross-traffic a
        // 16-window speculative round *must* take rollbacks — if it doesn't,
        // the battery above is silently testing the no-speculation path.
        let (base, base_stats) = direct(WindowPolicy::Conservative, 2);
        let (spec, spec_stats) = direct(WindowPolicy::Speculative { cap: 16 }, 2);
        assert_eq!(base, spec, "speculative run diverged from conservative");
        assert!(
            spec_stats.rollbacks > 0,
            "no rollbacks under heavy cross-traffic — speculation never engaged: {spec_stats:?}"
        );
        assert!(spec_stats.replayed_events > 0, "rollbacks discarded no events");
        assert_eq!(base_stats.rollbacks, 0, "conservative path must never roll back");
        assert!(
            spec_stats.barriers < base_stats.barriers,
            "speculation must elide barriers even while rolling back: {} vs {}",
            spec_stats.barriers,
            base_stats.barriers
        );
        // The stats themselves are deterministic: same run, same counters.
        let (_, again) = direct(WindowPolicy::Speculative { cap: 16 }, 8);
        assert_eq!(spec_stats, again, "sync stats depend on the worker count");
    }

    #[test]
    fn speculative_checkpoint_roundtrip_is_invisible() {
        let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Snapshot at a barrier mid-speculative-run, restore into fresh
        // cells, resume speculatively: same bytes as the straight run.
        use scaleup::Lab;
        let store = teastore::TeaStore::with_demand_scale(0.25);
        let mut lab = Lab::small(9).with_users(24).with_shards(3);
        lab.shard_cross_permille = 150;
        lab.shard_latency = SimDuration::from_micros(500);
        lab.shard_policy = WindowPolicy::Speculative { cap: 8 };
        lab.warmup = SimDuration::from_millis(100);
        lab.measure = SimDuration::from_millis(300);
        let app = store.app();
        let deployment = Deployment::uniform(app, &lab.topo, 2, 4);
        let straight = lab.run_app(app, deployment.clone(), microsvc::LbPolicy::RoundRobin);
        let resumed = lab
            .clone()
            .with_checkpoint(true)
            .run_app(app, deployment, microsvc::LbPolicy::RoundRobin);
        assert_eq!(straight.completed, resumed.completed);
        assert_eq!(straight.events_processed, resumed.events_processed);
        assert_eq!(straight.mean_latency, resumed.mean_latency);
        assert_eq!(straight.latency_p99, resumed.latency_p99);
        assert_eq!(
            straight.throughput_rps.to_bits(),
            resumed.throughput_rps.to_bits()
        );
        assert_eq!(straight.summary(), resumed.summary());
    }
}
