//! Cross-crate integration: distributed tracing through the full stack.

use cputopo::Topology;
use loadgen::ClosedLoop;
use microsvc::{Deployment, Engine, EngineParams};
use simcore::{SimDuration, SimTime};
use std::sync::Arc;
use teastore::TeaStore;

fn run_traced(sample_every: u64) -> (Engine, usize) {
    let topo = Arc::new(Topology::desktop_8c());
    let store = TeaStore::with_demand_scale(0.25);
    let mix = store.mix();
    let app = store.into_app();
    let deployment = Deployment::uniform(&app, &topo, 2, 8);
    let params = EngineParams {
        trace_sample_every: Some(sample_every),
        ..EngineParams::default()
    };
    let mut engine = Engine::new(topo, params, app, deployment, 5);
    let mut load = ClosedLoop::new(32)
        .think_time(SimDuration::from_millis(5))
        .mix(&mix)
        .warmup(SimDuration::from_millis(100))
        .measure(SimDuration::from_millis(800));
    engine.run(&mut load, SimTime::from_secs(30));
    let complete = engine
        .traces()
        .iter()
        .filter(|t| t.completed.is_some())
        .count();
    (engine, complete)
}

#[test]
fn traces_are_collected_and_complete() {
    let (engine, complete) = run_traced(20);
    assert!(complete > 10, "only {complete} complete traces");
    // Sampling keeps collection bounded.
    assert!(engine.traces().len() <= microsvc::Tracer::MAX_TRACES);
}

#[test]
fn spans_are_causally_ordered() {
    let (engine, _) = run_traced(10);
    for trace in engine.traces().iter().filter(|t| t.completed.is_some()) {
        let latency = trace.latency().expect("complete");
        assert!(latency > SimDuration::ZERO);
        let root = &trace.spans[0];
        assert_eq!(root.depth, 0, "first span is the entry service");
        for span in &trace.spans {
            assert!(span.enqueued <= span.started, "queue precedes start");
            assert!(span.started <= span.finished, "start precedes finish");
            assert!(
                span.enqueued >= trace.submitted,
                "no span before submission"
            );
            assert!(
                span.finished <= trace.completed.expect("complete"),
                "no span after completion"
            );
            assert!(span.cpu_time <= span.residency(), "CPU time fits residency");
        }
        // Child spans nest within the root span's residency window.
        for span in trace.spans.iter().skip(1) {
            assert!(span.depth >= 1);
            assert!(span.enqueued >= root.started);
            assert!(span.finished <= root.finished);
        }
    }
}

#[test]
fn trace_cpu_time_is_plausible() {
    let (engine, _) = run_traced(10);
    let mut any_cpu = false;
    for trace in engine.traces().iter().filter(|t| t.completed.is_some()) {
        for span in &trace.spans {
            if span.cpu_time > SimDuration::ZERO {
                any_cpu = true;
            }
        }
    }
    assert!(any_cpu, "spans must record CPU occupancy");
}

#[test]
fn fault_spans_carry_retry_attempts_and_causes() {
    // One webui replica is 100× slower for the whole run. With a tight call
    // timeout and retries, sampled traces must show retry-annotated spans
    // (attempt > 0) and timeout-annotated victim spans.
    use microsvc::{BreakerPolicy, FaultPlan, InstanceId, ResilienceParams, RetryPolicy};

    let topo = Arc::new(Topology::desktop_8c());
    let store = TeaStore::with_demand_scale(0.25);
    let mix = store.mix();
    let app = store.into_app();
    let deployment = Deployment::uniform(&app, &topo, 2, 8);
    let victim = InstanceId(0); // webui replica 0: on the path of every request
    let params = EngineParams {
        trace_sample_every: Some(1),
        faults: FaultPlan::none().slowdown(victim, SimTime::ZERO, SimTime::MAX, 100.0),
        resilience: Some(
            ResilienceParams::default()
                .with_timeout(SimDuration::from_millis(2))
                .with_retry(RetryPolicy {
                    max_retries: 2,
                    ..RetryPolicy::default()
                })
                .with_breaker(Some(BreakerPolicy {
                    open_for: SimDuration::from_millis(50),
                    ..BreakerPolicy::default()
                })),
        ),
        ..EngineParams::default()
    };
    let mut engine = Engine::new(topo, params, app, deployment, 11);
    let mut load = ClosedLoop::new(32)
        .think_time(SimDuration::from_millis(5))
        .mix(&mix)
        .warmup(SimDuration::from_millis(100))
        .measure(SimDuration::from_millis(800));
    engine.run(&mut load, SimTime::from_secs(30));

    let mut retried_spans = 0u64;
    let mut faulted_spans = 0u64;
    for trace in engine.traces() {
        for span in &trace.spans {
            if span.attempt > 0 {
                retried_spans += 1;
            }
            if span.fault.is_some() {
                faulted_spans += 1;
            }
        }
    }
    assert!(retried_spans > 0, "no retry-annotated spans recorded");
    assert!(faulted_spans > 0, "no fault-annotated spans recorded");

    // The breaker opens within a few timeouts of the start, after which the
    // slow replica receives half-open probe traffic only: across the run its
    // span count must be a small fraction of its healthy twin's (webui
    // replica 1 — `Deployment::uniform` lays instances out service-major).
    let twin = InstanceId(1);
    let spans_on = |inst: InstanceId| {
        engine
            .traces()
            .iter()
            .flat_map(|t| t.spans.iter())
            .filter(|s| s.instance == inst)
            .count()
    };
    let victim_spans = spans_on(victim);
    let twin_spans = spans_on(twin);
    assert!(
        twin_spans > 50,
        "healthy replica barely exercised: {twin_spans} spans"
    );
    assert!(
        victim_spans * 10 < twin_spans,
        "breaker failed to eject the slow replica: victim {victim_spans} vs twin {twin_spans}"
    );
}

#[test]
fn tracing_does_not_perturb_results() {
    // Tracing is observability: identical seeds with and without tracing
    // must produce identical workload outcomes.
    let topo = Arc::new(Topology::desktop_8c());
    let run = |sample: Option<u64>| {
        let store = TeaStore::with_demand_scale(0.25);
        let mix = store.mix();
        let app = store.into_app();
        let deployment = Deployment::uniform(&app, &topo, 2, 8);
        let params = EngineParams {
            trace_sample_every: sample,
            ..EngineParams::default()
        };
        let mut engine = Engine::new(topo.clone(), params, app, deployment, 9);
        let mut load = ClosedLoop::new(16)
            .think_time(SimDuration::from_millis(5))
            .mix(&mix)
            .warmup(SimDuration::from_millis(100))
            .measure(SimDuration::from_millis(500));
        engine.run(&mut load, SimTime::from_secs(30));
        let r = engine.report();
        (r.completed, r.mean_latency, r.sched.context_switches)
    };
    assert_eq!(run(None), run(Some(7)));
}
