//! Tier-1 gate: the static determinism & invariant pass must be clean.
//!
//! Runs the same engine as `cargo run -p simlint` and `repro lint` over the
//! real tree and fails on any non-baselined finding. The golden-hash tests
//! catch nondeterminism *after* it corrupts a sweep; this catches the
//! hazard patterns at review time.

use std::path::Path;

fn repo_root() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR of the root package is the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf()
}

#[test]
fn workspace_has_zero_gating_findings() {
    let root = repo_root();
    assert!(
        root.join("simlint.toml").is_file(),
        "simlint.toml must be checked in at the workspace root"
    );
    let report = simlint::lint_workspace(&root);
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
    let gating: Vec<String> = report
        .gating()
        .map(|f| format!("[{}] {}:{} — {}", f.rule, f.file, f.line, f.message))
        .collect();
    assert!(
        gating.is_empty(),
        "simlint found {} gating finding(s):\n{}\n\
         Fix the hazard, or annotate with `// simlint: allow(<rule>)` and a reason.",
        gating.len(),
        gating.join("\n")
    );
}

#[test]
fn baseline_is_empty_for_determinism_rules() {
    // The ratchet: the D-rule baseline was driven to empty in the migration
    // and must stay there. (H rules could baseline during an incremental
    // hot-path cleanup; determinism hazards may not.)
    let cfg = simlint::load_config(&repo_root());
    let stale: Vec<&String> = cfg
        .baseline
        .iter()
        .filter(|e| e.starts_with("D1:") || e.starts_with("D2:") || e.starts_with("D3:"))
        .collect();
    assert!(
        stale.is_empty(),
        "determinism rules must not be baselined: {stale:?}"
    );
}

#[test]
fn baseline_entries_are_live() {
    // A baseline entry whose finding no longer fires is stale and must be
    // removed — otherwise the baseline only ever grows.
    let root = repo_root();
    let cfg = simlint::load_config(&root);
    if cfg.baseline.is_empty() {
        return;
    }
    let report = simlint::lint_workspace(&root);
    for entry in &cfg.baseline {
        let (rule, file) = entry.split_once(':').expect("baseline entry RULE:path");
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.rule == rule && f.file == file),
            "stale baseline entry {entry:?}: the finding no longer fires"
        );
    }
}
