//! Tier-1 gate: the static determinism & invariant pass must be clean.
//!
//! Runs the same engine as `cargo run -p simlint` and `repro lint` over the
//! real tree and fails on any non-baselined finding. The golden-hash tests
//! catch nondeterminism *after* it corrupts a sweep; this catches the
//! hazard patterns at review time.

use std::path::Path;

fn repo_root() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR of the root package is the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf()
}

#[test]
fn workspace_has_zero_gating_findings() {
    let root = repo_root();
    assert!(
        root.join("simlint.toml").is_file(),
        "simlint.toml must be checked in at the workspace root"
    );
    let report = simlint::lint_workspace(&root);
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
    let gating: Vec<String> = report
        .gating()
        .map(|f| format!("[{}] {}:{} — {}", f.rule, f.file, f.line, f.message))
        .collect();
    assert!(
        gating.is_empty(),
        "simlint found {} gating finding(s):\n{}\n\
         Fix the hazard, or annotate with `// simlint: allow(<rule>)` and a reason.",
        gating.len(),
        gating.join("\n")
    );
}

#[test]
fn baseline_is_empty_for_determinism_rules() {
    // The ratchet: the D-rule baseline was driven to empty in the migration
    // and must stay there — every D rule (D1–D7), not just the original
    // three. (H and S rules could baseline during an incremental cleanup;
    // determinism hazards may not.)
    let cfg = simlint::load_config(&repo_root());
    let banned: Vec<&String> = cfg
        .baseline
        .iter()
        .filter(|e| {
            e.starts_with('D')
                && e.as_bytes().get(1).is_some_and(u8::is_ascii_digit)
                && e.as_bytes().get(2) == Some(&b':')
        })
        .collect();
    assert!(
        banned.is_empty(),
        "determinism rules (D1–D7) must not be baselined: {banned:?}"
    );
}

#[test]
fn baseline_entries_are_live() {
    // A baseline entry whose finding no longer fires is stale and must be
    // removed — otherwise the baseline only ever grows. The report carries
    // the stale set with each entry's simlint.toml line so the diagnostic
    // names exactly what to delete.
    let root = repo_root();
    let report = simlint::lint_workspace(&root);
    let details: Vec<String> = report
        .stale_baseline
        .iter()
        .map(|s| match s.toml_line {
            Some(line) => format!("  `{}` (simlint.toml:{line})", s.entry),
            None => format!("  `{}`", s.entry),
        })
        .collect();
    assert!(
        details.is_empty(),
        "{} stale baseline entr{} match no finding — delete from simlint.toml:\n{}",
        details.len(),
        if details.len() == 1 { "y" } else { "ies" },
        details.join("\n")
    );
}
