//! Property-based tests over cross-crate invariants.

use cputopo::{CpuId, CpuSet, Proximity, Topology, TopologyBuilder};
use microsvc::{
    AppSpec, CallNode, CallStage, Demand, Deployment, Driver, Engine, EngineCtx, EngineParams,
    FaultPlan, InstanceId, Outcome, ResilienceParams, ResponseInfo, RetryPolicy, ServiceSpec,
};
use proptest::prelude::*;
use simcore::{Calendar, SimTime};
use std::sync::Arc;
use uarch::ServiceProfile;

// ---------------------------------------------------------------- topology

fn topo_strategy() -> impl Strategy<Value = Topology> {
    (1u32..=2, 1u32..=2, 1u32..=4, 1u32..=2, 1u32..=4, 1u32..=2).prop_map(
        |(sockets, numa, ccds, ccxs, cores, threads)| {
            TopologyBuilder::new("prop")
                .sockets(sockets)
                .numa_per_socket(numa)
                .ccds_per_numa(ccds)
                .ccxs_per_ccd(ccxs)
                .cores_per_ccx(cores)
                .threads_per_core(threads)
                .build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topology_domains_partition_and_nest(topo in topo_strategy()) {
        // Every CPU appears in exactly one set per level, and domains nest.
        for cpu in topo.all_cpus().iter() {
            let domains = topo.domains_of(cpu);
            for w in domains.windows(2) {
                prop_assert!(w[0].is_subset(w[1]));
            }
            prop_assert!(domains[0].contains(cpu));
            // Level memberships are consistent with the id accessors.
            prop_assert!(topo.cpus_in_ccx(topo.ccx_of(cpu)).contains(cpu));
            prop_assert!(topo.cpus_in_numa(topo.numa_of(cpu)).contains(cpu));
            prop_assert!(topo.cpus_in_socket(topo.socket_of(cpu)).contains(cpu));
        }
        // Socket sets partition the machine.
        let total: usize = (0..topo.num_sockets() as u32)
            .map(|s| topo.cpus_in_socket(cputopo::SocketId(s)).len())
            .sum();
        prop_assert_eq!(total, topo.num_cpus());
    }

    #[test]
    fn proximity_is_symmetric_and_reflexive(topo in topo_strategy(), a_raw in 0u32..64, b_raw in 0u32..64) {
        let a = CpuId(a_raw % topo.num_cpus() as u32);
        let b = CpuId(b_raw % topo.num_cpus() as u32);
        prop_assert_eq!(topo.proximity(a, a), Proximity::SameCpu);
        prop_assert_eq!(topo.proximity(a, b), topo.proximity(b, a));
    }

    #[test]
    fn enumeration_orders_are_permutations(topo in topo_strategy()) {
        use cputopo::enumerate;
        for order in [
            enumerate::linear(&topo),
            enumerate::cores_first(&topo),
            enumerate::smt_packed(&topo),
            enumerate::ccx_round_robin(&topo),
            enumerate::socket_round_robin(&topo),
        ] {
            prop_assert_eq!(order.len(), topo.num_cpus());
            let set: CpuSet = order.iter().copied().collect();
            prop_assert_eq!(set.len(), topo.num_cpus());
        }
    }

    #[test]
    fn cpuset_matches_hashset_model(ops in proptest::collection::vec((0u8..4, 0u32..200), 1..200)) {
        let mut set = CpuSet::empty();
        let mut model: simcore::DetHashSet<u32> = simcore::DetHashSet::default();
        for (op, v) in ops {
            match op {
                0 => {
                    prop_assert_eq!(set.insert(CpuId(v)), model.insert(v));
                }
                1 => {
                    prop_assert_eq!(set.remove(CpuId(v)), model.remove(&v));
                }
                2 => {
                    prop_assert_eq!(set.contains(CpuId(v)), model.contains(&v));
                }
                _ => {
                    prop_assert_eq!(set.len(), model.len());
                }
            }
        }
        let from_iter: Vec<u32> = set.iter().map(|c| c.0).collect();
        let mut from_model: Vec<u32> = model.into_iter().collect();
        from_model.sort_unstable();
        prop_assert_eq!(from_iter, from_model);
    }
}

// ----------------------------------------------------------------- calendar

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn calendar_pops_sorted_and_complete(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((t, i)) = cal.pop() {
            prop_assert!(t >= last, "time went backwards");
            last = t;
            popped.push(i);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
    }

    #[test]
    fn calendar_accounting_is_exact_across_overflow_migration(
        // Spans the wheel horizon (~4.3e12 ns), so entries park in the
        // overflow heap and migrate back as the wheel advances; the live
        // count and high-water mark must track the model exactly through
        // every migration (no entry counted twice, none lost).
        times in proptest::collection::vec(0u64..10_000_000_000_000, 1..200),
        pop_every in 2usize..8,
    ) {
        let mut cal = Calendar::new();
        let mut live = 0usize;
        let mut peak = 0usize;
        for (i, &t) in times.iter().enumerate() {
            let at = SimTime::from_nanos(t).max(cal.now());
            cal.schedule(at, i);
            live += 1;
            peak = peak.max(live);
            if i % pop_every == 0 && cal.pop().is_some() {
                live -= 1;
            }
            prop_assert_eq!(cal.len(), live);
            prop_assert_eq!(cal.high_water(), peak);
        }
        while cal.pop().is_some() {
            live -= 1;
            prop_assert_eq!(cal.len(), live);
        }
        prop_assert_eq!(live, 0);
        prop_assert_eq!(cal.high_water(), peak);
        prop_assert!(cal.footprint_bytes() > 0);
    }
}

// -------------------------------------------------------------- USL fitting

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn usl_fit_reproduces_noiseless_curves(
        lambda in 10.0f64..500.0,
        sigma in 0.0f64..0.3,
        kappa in 0.0f64..0.01,
    ) {
        let ns = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
        let pts: Vec<(f64, f64)> = ns
            .iter()
            .map(|&n| {
                (n, lambda * n / (1.0 + sigma * (n - 1.0) + kappa * n * (n - 1.0)))
            })
            .collect();
        let fit = scaleup::usl::fit(&pts);
        for &(n, x) in &pts {
            let err = (fit.predict(n) - x).abs() / x.max(1e-9);
            prop_assert!(err < 0.05, "predict({n}) off by {err}");
        }
        prop_assert!(fit.r_squared > 0.99);
    }
}

// ------------------------------------------------- engine request conservation

#[derive(Debug, Clone)]
struct TreeSpec {
    depth: u8,
    fanout: u8,
    demand_us: f64,
}

// One service per tree level: synchronous workers hold their thread while
// waiting on children, so a service calling itself can deadlock when the
// pool is small (exactly like real servlet containers — see the
// `self_call_trees_deadlock_like_real_containers` test in `microsvc`).
// Non-reentrant trees must always complete; that is the property.
fn build_tree(services: &[microsvc::ServiceId], spec: &TreeSpec, level: u8) -> CallNode {
    let service = services[level as usize];
    if level >= spec.depth {
        return CallNode::leaf(service, Demand::fixed_us(spec.demand_us));
    }
    let children: Vec<CallNode> = (0..spec.fanout)
        .map(|_| build_tree(services, spec, level + 1))
        .collect();
    CallNode::new(
        service,
        Demand::fixed_us(spec.demand_us),
        vec![CallStage { parallel: children }],
        Demand::fixed_us(spec.demand_us / 2.0),
    )
}

struct Burst {
    to_issue: u32,
    done: u32,
}

impl Driver for Burst {
    fn start(&mut self, ctx: &mut dyn EngineCtx) {
        for c in 0..self.to_issue {
            ctx.submit(0, c as u64);
        }
    }
    fn on_response(&mut self, _resp: ResponseInfo, _ctx: &mut dyn EngineCtx) {
        self.done += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_request_completes_exactly_once(
        depth in 0u8..3,
        fanout in 1u8..3,
        demand_us in 20.0f64..500.0,
        replicas in 1usize..3,
        threads in 1usize..5,
        burst in 1u32..40,
        seed in 0u64..1000,
    ) {
        let topo = Arc::new(Topology::desktop_8c());
        let mut app = AppSpec::new();
        let services: Vec<microsvc::ServiceId> = (0..=depth as usize)
            .map(|i| {
                app.add_service(ServiceSpec::new(
                    &format!("s{i}"),
                    ServiceProfile::light_rpc(&format!("s{i}")),
                ))
            })
            .collect();
        let spec = TreeSpec { depth, fanout, demand_us };
        let root = build_tree(&services, &spec, 0);
        let jobs_per_request = root.node_count() as u64;
        app.add_class("prop", 1.0, root);
        let deployment = Deployment::uniform(&app, &topo, replicas, threads);
        let mut engine = Engine::new(topo, EngineParams::default(), app, deployment, seed);
        let mut driver = Burst { to_issue: burst, done: 0 };
        engine.run(&mut driver, SimTime::from_secs(120));

        // Conservation: every submitted request completed exactly once, and
        // the per-service job counts sum to requests × tree size.
        prop_assert_eq!(driver.done, burst);
        let report = engine.report();
        prop_assert_eq!(report.completed, burst as u64);
        let total_jobs: u64 = report.services.iter().map(|s| s.jobs_completed).sum();
        prop_assert_eq!(total_jobs, burst as u64 * jobs_per_request);
    }
}

// --------------------------------------------- fault injection & resilience

/// Per-outcome response counting, so conservation can be checked per kind.
struct OutcomeCount {
    to_issue: u32,
    ok: u64,
    timed_out: u64,
    shed: u64,
}

impl Driver for OutcomeCount {
    fn start(&mut self, ctx: &mut dyn EngineCtx) {
        for c in 0..self.to_issue {
            ctx.submit(0, c as u64);
        }
    }
    fn on_response(&mut self, resp: ResponseInfo, _ctx: &mut dyn EngineCtx) {
        match resp.outcome {
            Outcome::Ok => self.ok += 1,
            Outcome::TimedOut => self.timed_out += 1,
            Outcome::Shed | Outcome::ShedByPolicy(_) => self.shed += 1,
        }
    }
}

fn fault_test_app() -> (AppSpec, u64) {
    let mut app = AppSpec::new();
    let services: Vec<microsvc::ServiceId> = (0..3)
        .map(|i| {
            app.add_service(ServiceSpec::new(
                &format!("s{i}"),
                ServiceProfile::light_rpc(&format!("s{i}")),
            ))
        })
        .collect();
    let spec = TreeSpec {
        depth: 2,
        fanout: 2,
        demand_us: 100.0,
    };
    let root = build_tree(&services, &spec, 0);
    let jobs = root.node_count() as u64;
    app.add_class("prop", 1.0, root);
    (app, jobs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A fault plan whose every window lies beyond the horizon, plus a
    /// resilience layer whose budgets nothing can exhaust, must leave the
    /// run byte-identical to the legacy engine: fault awareness may not
    /// perturb RNG draws, balancer picks, or event ordering.
    #[test]
    fn inert_faults_and_resilience_leave_runs_untouched(
        crash_at_s in 200u64..4_000,
        slow_at_s in 200u64..4_000,
        replicas in 1usize..3,
        threads in 1usize..5,
        burst in 1u32..30,
        seed in 0u64..1000,
    ) {
        let run = |faults: FaultPlan, resilience: Option<ResilienceParams>| {
            let topo = Arc::new(Topology::desktop_8c());
            let (app, _) = fault_test_app();
            let deployment = Deployment::uniform(&app, &topo, replicas, threads);
            let params = EngineParams { faults, resilience, ..EngineParams::default() };
            let mut engine = Engine::new(topo, params, app, deployment, seed);
            let mut driver = Burst { to_issue: burst, done: 0 };
            engine.run(&mut driver, SimTime::from_secs(120));
            engine.report().summary()
        };
        let legacy = run(FaultPlan::none(), None);
        let dormant_faults = FaultPlan::none()
            .crash(InstanceId(0), SimTime::from_secs(crash_at_s), simcore::SimDuration::from_secs(1))
            .slowdown(InstanceId(0), SimTime::from_secs(slow_at_s), SimTime::MAX, 10.0);
        prop_assert_eq!(&run(dormant_faults.clone(), None), &legacy);
        let generous = ResilienceParams::default()
            .with_timeout(simcore::SimDuration::from_secs(3600))
            .with_breaker(None);
        prop_assert_eq!(&run(dormant_faults, Some(generous)), &legacy);
    }

    /// Under arbitrary crashes, slowdowns, and reply faults — with a
    /// resilience layer armed — every submitted request resolves exactly
    /// once (Ok, TimedOut, or Shed), retry attempts never exceed the
    /// budget, and every timeout is accounted for as a retry, a fallback,
    /// or a client-visible failure.
    #[test]
    fn faulted_runs_conserve_every_request(
        crashes in proptest::collection::vec(
            (0u32..8, 0u64..3_000, 100u64..3_000), 0..3),
        slowdowns in proptest::collection::vec(
            (0u32..8, 0u64..3_000, 100u64..5_000, 2u32..50), 0..3),
        drops in proptest::collection::vec(
            (0u32..8, 0u64..3_000, 100u64..5_000, 0u32..=100), 0..3),
        max_retries in 0u8..4,
        timeout_us in 500u64..5_000,
        breaker in any::<bool>(),
        burst in 1u32..40,
        seed in 0u64..1000,
    ) {
        let topo = Arc::new(Topology::desktop_8c());
        let (app, _) = fault_test_app();
        let deployment = Deployment::uniform(&app, &topo, 2, 4);
        let instances = deployment.iter().count() as u32;
        let us = |v: u64| SimTime::from_nanos(v * 1_000);
        let mut plan = FaultPlan::none();
        // Overlapping same-instance crash windows are rejected by
        // `FaultPlan::validate`; drop any sampled crash that would overlap
        // one already in the plan rather than filtering the whole case.
        let mut windows: Vec<(u32, u64, u64)> = Vec::new();
        for &(i, at, down) in &crashes {
            let inst = i % instances;
            let overlaps = windows
                .iter()
                .any(|&(w_inst, w_at, w_end)| w_inst == inst && at < w_end && w_at < at + down);
            if overlaps {
                continue;
            }
            windows.push((inst, at, at + down));
            plan = plan.crash(
                InstanceId(inst),
                us(at),
                simcore::SimDuration::from_micros(down),
            );
        }
        for &(i, from, len, factor) in &slowdowns {
            plan = plan.slowdown(InstanceId(i % instances), us(from), us(from + len), factor as f64);
        }
        for &(i, from, len, pct) in &drops {
            plan = plan.reply_fault(
                InstanceId(i % instances),
                us(from),
                us(from + len),
                pct as f64 / 100.0,
                simcore::SimDuration::from_micros(50),
            );
        }
        let resilience = ResilienceParams::default()
            .with_timeout(simcore::SimDuration::from_micros(timeout_us))
            .with_retry(RetryPolicy {
                max_retries,
                ..RetryPolicy::default()
            })
            .with_breaker(breaker.then(microsvc::BreakerPolicy::default));
        let params = EngineParams {
            faults: plan,
            resilience: Some(resilience),
            trace_sample_every: Some(1),
            ..EngineParams::default()
        };
        let mut engine = Engine::new(topo, params, app, deployment, seed);
        let mut driver = OutcomeCount { to_issue: burst, ok: 0, timed_out: 0, shed: 0 };
        engine.run(&mut driver, SimTime::from_secs(120));

        // Conservation: exactly one resolution per submitted request, and
        // the driver's view agrees with the engine's counters.
        prop_assert_eq!(driver.ok + driver.timed_out + driver.shed, burst as u64);
        let report = engine.report();
        prop_assert_eq!(report.completed, driver.ok);
        prop_assert_eq!(report.requests_timed_out, driver.timed_out);
        prop_assert_eq!(report.requests_shed, driver.shed);

        // Every timeout resolves into exactly one of: a retry, a
        // retries-exhausted fallback reply, or a client-visible failure.
        let timeouts: u64 = report.services.iter().map(|s| s.timeouts).sum();
        let retries: u64 = report.services.iter().map(|s| s.retries).sum();
        let fallbacks: u64 = report.services.iter().map(|s| s.fallbacks).sum();
        prop_assert_eq!(timeouts, retries + fallbacks + report.requests_timed_out);

        // The retry budget holds per call slot: no span is ever annotated
        // with an attempt beyond the policy's maximum.
        for trace in engine.traces() {
            for span in &trace.spans {
                prop_assert!(
                    span.attempt <= max_retries,
                    "span attempt {} exceeds budget {max_retries}",
                    span.attempt
                );
            }
        }
    }
}
