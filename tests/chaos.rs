//! Battery for the chaos search harness (`microsvc::chaos` +
//! `scaleup::chaos`).
//!
//! The determinism contract (see DESIGN.md "Chaos search"):
//!
//! 1. The whole search trajectory — every sampled plan, every verdict,
//!    every accepted shrink step, every minimal reproducer — is a pure
//!    function of `(configuration, seed)`. Golden hashes pin it.
//! 2. The worker count never changes a byte: `--jobs 1` and `--jobs 8`
//!    produce identical trajectories.
//! 3. The fork-at-trigger fast path (branch one warm snapshot, install the
//!    candidate plan, re-simulate the suffix) reaches the same verdicts as
//!    straight runs with the plan baked in from t = 0.
//! 4. The shrinker is sound: minimal reproducers still violate the target
//!    invariant, are weakenings (event-subsets with narrowed windows and
//!    lowered severities) of the original plan, and re-shrinking a minimal
//!    plan returns it unchanged.

use microsvc::{chaos, ChaosPlan, FaultEvent, PlanSpace};
use proptest::prelude::*;
use scaleup_bench::{experiments as exp, Config};
use simcore::SimTime;
use std::sync::Mutex;

/// Serializes tests that touch the global `scaleup::par` worker count.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

/// The search configuration every test in this file shares: the quick
/// config with a small plan budget, so the battery stays in test-suite
/// time while still sampling every fault mode.
fn chaos_config() -> Config {
    let mut config = Config::quick(42);
    config.chaos_plans = 8;
    config
}

fn search(config: &Config) -> exp::ChaosStudy {
    exp::chaos_search(config)
}

/// Recorded golden hashes for the 8-plan search above (seed 42). Verified
/// stable across reruns and worker counts before recording; drift means
/// the sampled plan space, the oracle, or the shrinker changed — record
/// new values only with an explanation in the commit.
const GOLDEN_TRAJECTORY: u64 = 0xcb26_c0ea_4283_9ea6;
const GOLDEN_MINIMAL: u64 = 0x066e_e704_b603_f14e;

#[test]
fn chaos_search_matches_goldens_and_is_jobs_invariant() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = chaos_config();

    scaleup::par::set_jobs(1);
    let serial = search(&config);
    scaleup::par::set_jobs(8);
    let wide = search(&config);
    scaleup::par::set_jobs(0);

    assert_eq!(
        serial.report.trajectory, wide.report.trajectory,
        "search trajectory differs between 1 and 8 workers"
    );
    assert_eq!(serial.table, wide.table, "rendered table differs");
    assert_eq!(
        serial.report.trajectory_hash, GOLDEN_TRAJECTORY,
        "trajectory drifted; new hash {:#018x}, trajectory:\n{}",
        serial.report.trajectory_hash, serial.report.trajectory
    );
    assert_eq!(
        serial.report.minimal_hash, GOLDEN_MINIMAL,
        "minimal reproducers drifted; new hash {:#018x}",
        serial.report.minimal_hash
    );
}

#[test]
fn chaos_search_finds_and_shrinks_a_genuine_violation() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = chaos_config();
    let study = search(&config);
    let report = &study.report;

    assert!(
        !report.findings.is_empty(),
        "the fixed seed must find at least one SLO violation in the hardened config"
    );
    let mut some_small = false;
    for f in &report.findings {
        let s = f.shrunk.as_ref().expect("chaos_search shrinks");
        assert!(
            s.verdict.violated.contains(&f.target),
            "minimal reproducer of plan {} no longer violates {}",
            f.index,
            f.target
        );
        assert!(
            s.minimal.is_weakening_of(&f.plan),
            "minimal reproducer of plan {} is not a weakening of the original:\n{}\nvs\n{}",
            f.index,
            s.minimal.describe(),
            f.plan.describe()
        );
        some_small |= s.minimal.size() * 4 <= f.plan.size();
    }
    assert!(
        some_small,
        "no finding shrank to ≤25% of its original plan size"
    );
}

#[test]
fn fork_at_trigger_matches_straight_runs() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = chaos_config();
    let harness = exp::chaos_harness(&config);
    // Differential: the branched-snapshot fast path and a full straight run
    // with the plan baked into the engine parameters must reach the same
    // verdict for every sampled plan.
    for index in 0..6u64 {
        let plan = harness.space.sample(config.lab.seed, index);
        let forked = harness.verdict(&plan, &harness.probe(&plan));
        let straight = harness.verdict(&plan, &harness.probe_straight(&plan));
        assert_eq!(
            forked.violated, straight.violated,
            "plan {index}: forked probe violated {:?}, straight run {:?}\nplan:\n{}",
            forked.violated,
            straight.violated,
            plan.describe()
        );
    }
}

// ------------------------------------------------------ shrinker soundness
//
// The shrinker's contract holds for *any* deterministic predicate, not just
// the SLO oracle; these properties drive it with pure predicates (no
// simulation) over plans sampled from the real generative space.

/// The pure predicate family the proptests shrink against. Each is a
/// deterministic function of the plan alone and stays satisfiable under
/// shrinking (some atom of the plan keeps it true).
fn predicate(kind: u8) -> impl Fn(&ChaosPlan) -> bool {
    move |plan: &ChaosPlan| match kind {
        // Some instance crashes.
        0 => plan
            .events
            .iter()
            .any(|e| matches!(e, FaultEvent::Crash { .. })),
        // Some fault is active at (or crosses) the space midpoint.
        1 => plan.events.iter().any(|e| {
            e.start() <= SimTime::from_millis(1500) && e.end() > SimTime::from_millis(1500)
        }),
        // Some event degrades more than one "unit" (multi-instance crash
        // or any non-crash fault).
        _ => !plan.events.is_empty(),
    }
}

fn sample_space() -> PlanSpace {
    PlanSpace {
        instances: 4,
        from: SimTime::from_millis(1000),
        until: SimTime::from_millis(2500),
        events_min: 2,
        events_max: 8,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shrunk_plans_still_violate_and_are_event_subsets(
        seed in 0u64..1024,
        index in 0u64..64,
        kind in 0u8..3,
    ) {
        let plan = sample_space().sample(seed, index);
        let pred = predicate(kind);
        // The vendored proptest has no prop_assume; skip non-violating
        // samples (the predicates hold for most of the space).
        if !pred(&plan) {
            return Ok(());
        }
        let outcome = chaos::shrink(&plan, |p| pred(p));
        // Still violating: the shrinker never returns a passing plan.
        prop_assert!(pred(&outcome.minimal));
        // Subset: every surviving event weakens an event of the original,
        // in order (windows narrowed, severities lowered, instances
        // dropped — never new faults).
        prop_assert!(
            outcome.minimal.is_weakening_of(&plan),
            "shrunk plan is not a weakening:\n{}\nvs\n{}",
            outcome.minimal.describe(),
            plan.describe()
        );
    }

    #[test]
    fn shrinking_is_idempotent(
        seed in 0u64..1024,
        index in 0u64..64,
        kind in 0u8..3,
    ) {
        let plan = sample_space().sample(seed, index);
        let pred = predicate(kind);
        if !pred(&plan) {
            return Ok(());
        }
        let once = chaos::shrink(&plan, |p| pred(p));
        let twice = chaos::shrink(&once.minimal, |p| pred(p));
        prop_assert_eq!(
            once.minimal.describe(),
            twice.minimal.describe(),
            "re-shrinking a minimal plan changed it"
        );
        prop_assert!(twice.steps.is_empty(), "re-shrink accepted steps: {:?}", twice.steps);
    }
}
