//! Reproducibility: identical seeds give identical simulations across the
//! whole stack; different seeds differ.

use scaleup::{placement::Policy, tuner, Lab};
use simcore::SimDuration;
use teastore::TeaStore;

fn run(seed: u64) -> (u64, u64, u64, u64) {
    let mut lab = Lab::paper_machine(seed).with_users(512);
    lab.warmup = SimDuration::from_millis(300);
    lab.measure = SimDuration::from_millis(600);
    let store = TeaStore::browse();
    let replicas = tuner::proportional_replicas(store.app(), 32);
    let report = lab.run_policy(&store, Policy::Unpinned, &replicas);
    (
        report.completed,
        report.mean_latency.as_nanos(),
        report.sched.context_switches,
        report.services[0].counters.instructions,
    )
}

#[test]
fn same_seed_bitwise_identical() {
    assert_eq!(run(1234), run(1234));
}

#[test]
fn different_seed_differs() {
    assert_ne!(run(1), run(2));
}

#[test]
fn experiment_harness_is_deterministic() {
    use scaleup_bench::experiments;
    use scaleup_bench::Config;
    let a = experiments::e8(&Config::quick(5));
    let b = experiments::e8(&Config::quick(5));
    assert_eq!(a.table, b.table);
    assert_eq!(a.uplift_pct, b.uplift_pct);
}

/// Negative path: determinism tests only prove something if a *perturbed*
/// run actually changes the outcome. Branch a run at the warm-up point with
/// a perturbed RNG stream and assert the golden hash of the report changes —
/// if it didn't, the positive tests above would be vacuous.
mod perturbation {
    use scaleup::{placement::Policy, tuner, BranchOverrides, Lab};
    use simcore::SimTime;
    use teastore::TeaStore;

    /// FNV-1a golden hash of the deterministic report fields.
    fn golden_hash(r: &microsvc::RunReport) -> u64 {
        let rendered = format!(
            "{} {} {} {} {}",
            r.completed,
            r.events_processed,
            r.mean_latency.as_nanos(),
            r.latency_p99.as_nanos(),
            r.throughput_rps.to_bits(),
        );
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in rendered.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    #[test]
    fn perturbing_one_rng_stream_mid_run_changes_the_golden_hash() {
        let lab = Lab::small(42).with_users(64);
        let store = TeaStore::with_demand_scale(0.25);
        let replicas = tuner::proportional_replicas(store.app(), 12);
        let placed = Policy::Unpinned.deploy(store.app(), &lab.topo, &replicas);
        let bytes = lab.snapshot_app(
            store.app(),
            placed.deployment.clone(),
            placed.lb,
            SimTime::ZERO + lab.warmup,
        );
        // Control arm: an unperturbed resume replays the straight run.
        let straight = lab.run_app(store.app(), placed.deployment.clone(), placed.lb);
        let resumed = lab
            .resume_app(store.app(), placed.deployment.clone(), placed.lb, &bytes)
            .expect("resume from an in-process snapshot");
        assert_eq!(
            golden_hash(&straight),
            golden_hash(&resumed),
            "unperturbed resume must match the straight run"
        );
        // Perturbed arm: one salted reseed of the engine's RNG streams at
        // the fork point must change the trajectory, and thus the hash.
        let perturbed = lab
            .branch_app(
                store.app(),
                placed.deployment,
                placed.lb,
                &bytes,
                &BranchOverrides {
                    reseed: Some(1),
                    demand_scale: None,
                    faults: None,
                },
            )
            .expect("branch from an in-process snapshot");
        assert_ne!(
            golden_hash(&straight),
            golden_hash(&perturbed),
            "a perturbed RNG stream must change the golden hash — \
             otherwise the determinism tests prove nothing"
        );
        assert!(perturbed.completed > 0, "perturbed run must still work");
    }
}

#[test]
fn faulted_run_same_seed_bitwise_identical() {
    use microsvc::{FaultPlan, InstanceId, ResilienceParams};
    use simcore::SimTime;

    // The fault plan and resilience layer draw from their own seeded RNG
    // streams; a crash, a slowdown, and probabilistic reply drops must all
    // replay bit-for-bit under the same seed.
    let run = |seed: u64| {
        let mut lab = Lab::small(seed).with_users(64);
        lab.warmup = SimDuration::from_millis(200);
        lab.measure = SimDuration::from_millis(600);
        lab.engine_params.faults = FaultPlan::none()
            .crash(
                InstanceId(0),
                SimTime::from_nanos(300_000_000),
                SimDuration::from_millis(100),
            )
            .slowdown(
                InstanceId(1),
                SimTime::from_nanos(400_000_000),
                SimTime::from_nanos(600_000_000),
                8.0,
            )
            .reply_fault(
                InstanceId(2),
                SimTime::from_nanos(200_000_000),
                SimTime::from_nanos(700_000_000),
                0.3,
                SimDuration::from_micros(200),
            );
        lab.engine_params.resilience = Some(
            ResilienceParams::default().with_timeout(SimDuration::from_millis(10)),
        );
        let store = TeaStore::with_demand_scale(0.25);
        let replicas = tuner::proportional_replicas(store.app(), 12);
        let report = lab.run_policy(&store, Policy::Unpinned, &replicas);
        let per_service: Vec<(u64, u64, u64, u64)> = report
            .services
            .iter()
            .map(|s| (s.timeouts, s.retries, s.fallbacks, s.breaker_opened))
            .collect();
        (
            report.completed,
            report.requests_timed_out,
            report.requests_shed,
            report.late_replies,
            report.replies_dropped,
            report.rejected_arrivals,
            report.mean_latency.as_nanos(),
            per_service,
        )
    };
    let a = run(77);
    assert_eq!(a, run(77));
    assert!(a.0 > 0, "faulted run must still complete requests");
    // The plan must actually have bitten, or this test proves nothing.
    assert!(
        a.4 + a.5 > 0 || a.7.iter().any(|&(t, ..)| t > 0),
        "fault plan never fired: {a:?}"
    );
    assert_ne!(a, run(78), "different seeds must differ");
}
