//! Reproducibility: identical seeds give identical simulations across the
//! whole stack; different seeds differ.

use scaleup::{placement::Policy, tuner, Lab};
use simcore::SimDuration;
use teastore::TeaStore;

fn run(seed: u64) -> (u64, u64, u64, u64) {
    let mut lab = Lab::paper_machine(seed).with_users(512);
    lab.warmup = SimDuration::from_millis(300);
    lab.measure = SimDuration::from_millis(600);
    let store = TeaStore::browse();
    let replicas = tuner::proportional_replicas(store.app(), 32);
    let report = lab.run_policy(&store, Policy::Unpinned, &replicas);
    (
        report.completed,
        report.mean_latency.as_nanos(),
        report.sched.context_switches,
        report.services[0].counters.instructions,
    )
}

#[test]
fn same_seed_bitwise_identical() {
    assert_eq!(run(1234), run(1234));
}

#[test]
fn different_seed_differs() {
    assert_ne!(run(1), run(2));
}

#[test]
fn experiment_harness_is_deterministic() {
    use scaleup_bench::experiments;
    use scaleup_bench::Config;
    let a = experiments::e8(&Config::quick(5));
    let b = experiments::e8(&Config::quick(5));
    assert_eq!(a.table, b.table);
    assert_eq!(a.uplift_pct, b.uplift_pct);
}
