//! Golden-output tests for the hot-path overhaul: the timer wheel, the
//! slab-recycled request path, the memoized CPI model, and the parallel
//! sweep runner must all be invisible in the reports.
//!
//! Two guarantees:
//! 1. The quick-config E3/E8 tables hash to recorded values — any change to
//!    the simulation's arithmetic or event ordering trips these.
//! 2. Running a sweep with 1 worker and with 8 workers yields byte-identical
//!    tables — the work-stealing pool only changes *when* a point runs, the
//!    merge order is the sweep order.
//!
//! The fault (E18/E19) and overload (E20/E21) experiments are pinned the
//! same way: hashes catch drift from the overload-control machinery, the
//! jobs test catches any nondeterminism in their sweeps. E27 (warm-start
//! grid, wall-clock-free cell fingerprints) and E29 (chaos sweep) extend
//! the battery over the checkpoint/branch and chaos-search layers.

use scaleup_bench::{experiments as exp, Config};
use std::sync::Mutex;

/// Serializes tests that touch the global `scaleup::par` worker count.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn e3_e8_quick_tables_match_golden_hashes() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = Config::quick(42);
    let e3 = exp::e3(&config).table;
    let e8 = exp::e8(&config).table;
    // Recorded from the pre-overhaul seed (verified byte-identical across
    // the BinaryHeap->wheel, alloc->slab, and sequential->parallel changes).
    assert_eq!(
        fnv1a(&e3),
        0xb1ff_8356_b91c_cc85,
        "E3 quick table drifted; new hash {:#018x}, table:\n{e3}",
        fnv1a(&e3)
    );
    assert_eq!(
        fnv1a(&e8),
        0x623d_25c1_8fc8_4803,
        "E8 quick table drifted; new hash {:#018x}, table:\n{e8}",
        fnv1a(&e8)
    );
}

#[test]
fn e18_e19_quick_tables_match_golden_hashes() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = Config::quick(42);
    let e18 = exp::e18(&config).table;
    let e19 = exp::e19(&config).table;
    // Recorded when the overload-control layer landed: the fault-injection
    // experiments must not shift when admission/budget/limiter code is
    // present but unconfigured.
    assert_eq!(
        fnv1a(&e18),
        0x6abd_466c_8432_14c5,
        "E18 quick table drifted; new hash {:#018x}, table:\n{e18}",
        fnv1a(&e18)
    );
    assert_eq!(
        fnv1a(&e19),
        0x6dfe_8d00_0099_bf2a,
        "E19 quick table drifted; new hash {:#018x}, table:\n{e19}",
        fnv1a(&e19)
    );
}

#[test]
fn e22_e23_quick_tables_match_golden_hashes() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = Config::quick(42);
    let e22 = exp::e22(&config).table;
    let e23 = exp::e23(&config).table;
    // Recorded when the mega-scale layer landed: the brownout and recovery
    // studies must not shift when the compact slabs, streaming series, and
    // reservoir tracer are present but unconfigured.
    assert_eq!(
        fnv1a(&e22),
        0xe9d7_52fe_b2b9_97d3,
        "E22 quick table drifted; new hash {:#018x}, table:\n{e22}",
        fnv1a(&e22)
    );
    assert_eq!(
        fnv1a(&e23),
        0x20c7_735a_8ca3_4ed1,
        "E23 quick table drifted; new hash {:#018x}, table:\n{e23}",
        fnv1a(&e23)
    );
}

#[test]
fn e20_e21_quick_tables_match_golden_hashes() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = Config::quick(42);
    let e20 = exp::e20(&config).table;
    let e21 = exp::e21(&config).table;
    // Recorded when the checkpoint/branch layer landed: the overload sweeps
    // must not shift when the snapshot registry is present but unused.
    assert_eq!(
        fnv1a(&e20),
        0x1c11_6acc_3d76_c5a7,
        "E20 quick table drifted; new hash {:#018x}, table:\n{e20}",
        fnv1a(&e20)
    );
    assert_eq!(
        fnv1a(&e21),
        0x21a6_7f22_ffd7_14b2,
        "E21 quick table drifted; new hash {:#018x}, table:\n{e21}",
        fnv1a(&e21)
    );
}

#[test]
fn e24_quick_rows_match_golden_hash() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = Config::quick(42);
    // E24's rendered table embeds wall-clock events/s, so pin the
    // simulation-derived row fields instead of the table text.
    let rows: Vec<_> = exp::e24(&config)
        .rows
        .iter()
        .map(|p| {
            (
                p.users,
                p.report.completed,
                p.report.latency_p99,
                p.report.events_processed,
                p.bytes_per_user.to_bits(),
            )
        })
        .collect();
    let rendered = format!("{rows:?}");
    assert_eq!(
        fnv1a(&rendered),
        0xec38_ee81_44b2_12ed,
        "E24 quick rows drifted; new hash {:#018x}, rows:\n{rendered}",
        fnv1a(&rendered)
    );
}

#[test]
fn mega_experiments_are_deterministic_at_any_worker_count() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = Config::quick(42);
    // E24's table embeds wall-clock events/s, so compare the deterministic
    // row fields; the E25/E26 tables carry only simulation-derived values
    // and must match byte for byte.
    let snapshot = || {
        let e24: Vec<_> = exp::e24(&config)
            .rows
            .iter()
            .map(|p| {
                (
                    p.users,
                    p.report.completed,
                    p.report.latency_p99,
                    p.report.events_processed,
                    p.bytes_per_user.to_bits(),
                )
            })
            .collect();
        (e24, exp::e25(&config).table, exp::e26(&config).table)
    };
    scaleup::par::set_jobs(1);
    let seq = snapshot();
    scaleup::par::set_jobs(8);
    let par = snapshot();
    scaleup::par::set_jobs(0); // restore auto
    assert_eq!(seq.0, par.0, "E24 differs between --jobs 1 and --jobs 8");
    assert_eq!(seq.1, par.1, "E25 differs between --jobs 1 and --jobs 8");
    assert_eq!(seq.2, par.2, "E26 differs between --jobs 1 and --jobs 8");
}

#[test]
fn overload_experiments_are_byte_identical_at_any_worker_count() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = Config::quick(42);
    scaleup::par::set_jobs(1);
    let seq = (exp::e20(&config).table, exp::e21(&config).table);
    scaleup::par::set_jobs(8);
    let par = (exp::e20(&config).table, exp::e21(&config).table);
    scaleup::par::set_jobs(0); // restore auto
    assert_eq!(seq.0, par.0, "E20 differs between --jobs 1 and --jobs 8");
    assert_eq!(seq.1, par.1, "E21 differs between --jobs 1 and --jobs 8");
}

#[test]
fn enumeration_orders_are_byte_identical_at_any_worker_count() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = Config::quick(42);
    // E17 sweeps the five CPU-mask enumeration orders under par::map and
    // counts distinct cores per mask — the path the D1 migration moved off
    // std HashSet (cputopo enumeration + sorted dedup). Loadgen's wake
    // buckets ride the same guarantee via the E24 leg above.
    scaleup::par::set_jobs(1);
    let seq = exp::e17(&config);
    scaleup::par::set_jobs(8);
    let par = exp::e17(&config);
    scaleup::par::set_jobs(0); // restore auto
    assert_eq!(seq, par, "E17 differs between --jobs 1 and --jobs 8");
}

#[test]
fn sweeps_are_byte_identical_at_any_worker_count() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = Config::quick(42);
    scaleup::par::set_jobs(1);
    let seq = (exp::e3(&config).table, exp::e8(&config).table);
    scaleup::par::set_jobs(8);
    let par = (exp::e3(&config).table, exp::e8(&config).table);
    scaleup::par::set_jobs(0); // restore auto
    assert_eq!(seq.0, par.0, "E3 differs between --jobs 1 and --jobs 8");
    assert_eq!(seq.1, par.1, "E8 differs between --jobs 1 and --jobs 8");
}

#[test]
fn e27_e29_quick_outputs_match_golden_hashes() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = Config::quick(42);
    // E27's rendered table embeds wall-clock seconds, so pin the
    // simulation-derived cell fingerprint (same fields the experiment's own
    // cold-vs-warm check compares) plus the `identical` verdict. E29's
    // table carries only seed-derived values and hashes directly.
    let e27 = exp::e27(&config);
    let cells: Vec<_> = e27
        .cold
        .iter()
        .chain(e27.warm.iter())
        .map(|(users, extent, r)| {
            (
                *users,
                extent.as_nanos(),
                r.completed,
                r.events_processed,
                r.throughput_rps.to_bits(),
            )
        })
        .collect();
    let rendered = format!("{cells:?} {}", e27.identical);
    assert_eq!(
        fnv1a(&rendered),
        0x6d4b_c8f4_dd5d_30a9,
        "E27 quick fingerprint drifted; new hash {:#018x}, cells:\n{rendered}",
        fnv1a(&rendered)
    );
    let e29 = exp::e29(&config).table;
    assert_eq!(
        fnv1a(&e29),
        0x674d_2227_498a_d819,
        "E29 quick table drifted; new hash {:#018x}, table:\n{e29}",
        fnv1a(&e29)
    );
}

#[test]
fn warm_start_and_chaos_are_deterministic_at_any_worker_count() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = Config::quick(42);
    // E27 compares the wall-clock-free cell fingerprints; E29's table must
    // match byte for byte (the chaos search fans probes across the pool but
    // merges findings in plan order).
    let snapshot = || {
        let e27 = exp::e27(&config);
        let cells: Vec<_> = e27
            .cold
            .iter()
            .chain(e27.warm.iter())
            .map(|(users, extent, r)| {
                (
                    *users,
                    extent.as_nanos(),
                    r.completed,
                    r.events_processed,
                    r.throughput_rps.to_bits(),
                )
            })
            .collect();
        (cells, e27.identical, exp::e29(&config).table)
    };
    scaleup::par::set_jobs(1);
    let seq = snapshot();
    scaleup::par::set_jobs(8);
    let par = snapshot();
    scaleup::par::set_jobs(0); // restore auto
    assert_eq!(seq.0, par.0, "E27 differs between --jobs 1 and --jobs 8");
    assert_eq!(seq.1, par.1, "E27 verdict differs between --jobs 1 and --jobs 8");
    assert_eq!(seq.2, par.2, "E29 differs between --jobs 1 and --jobs 8");
}
