//! Cross-crate integration: the relational store drives the simulation.
//!
//! `storedb` → `teastore::catalog` → derived demand table → full engine run.

use scaleup::{placement::Policy, tuner, Lab};
use simcore::Rng;
use teastore::catalog::{Catalog, CostModel};
use teastore::demands::DemandTable;
use teastore::{MixProfile, TeaStore};

fn catalog_store(products_per_category: usize) -> TeaStore {
    let mut catalog = Catalog::generate(&mut Rng::seed_from(42), 16, products_per_category, 1_000);
    let table = DemandTable::with_catalog_queries(&mut catalog, &CostModel::default(), 1.0);
    TeaStore::with_demand_table(MixProfile::Browse, table)
}

#[test]
fn catalog_driven_teastore_runs_end_to_end() {
    let lab = Lab::small(3).with_users(32);
    let store = catalog_store(100);
    let replicas = tuner::proportional_replicas(store.app(), 10);
    let report = lab.run_policy(&store, Policy::Unpinned, &replicas);
    assert!(report.completed > 100, "completed {}", report.completed);
    // The db tier did real (derived-cost) work.
    let db = store.services().db.index();
    assert!(report.services[db].jobs_completed > 0);
}

#[test]
fn catalog_demands_track_hand_calibration_end_to_end() {
    // Running with the data-derived table should land within ~25% of the
    // hand-calibrated table's throughput: the derivation is a recalibration,
    // not a different workload.
    let lab = Lab::small(5).with_users(64);
    let replicas = vec![4, 1, 2, 1, 2, 1, 2];
    let hand = lab.run_policy(&TeaStore::browse(), Policy::Unpinned, &replicas);
    let derived = lab.run_policy(&catalog_store(100), Policy::Unpinned, &replicas);
    let ratio = derived.throughput_rps / hand.throughput_rps;
    assert!(
        (0.75..=1.35).contains(&ratio),
        "derived-vs-hand throughput ratio {ratio:.2} ({} vs {})",
        derived.throughput_rps,
        hand.throughput_rps
    );
}

#[test]
fn larger_catalogs_do_not_change_paged_query_costs() {
    // TeaStore paginates its product listings precisely so catalog growth
    // does not blow up page-query cost; the derived demands must reflect
    // that (the first-page query reads one page regardless of table size).
    let small = catalog_store(40);
    let large = catalog_store(400);
    let s = small.app().mean_demand_per_service_us();
    let l = large.app().mean_demand_per_service_us();
    let db = small.services().db.index();
    let ratio = l[db] / s[db];
    assert!(
        (0.9..=1.2).contains(&ratio),
        "db demand should be page-stable across catalog sizes, ratio {ratio:.2}"
    );
}
