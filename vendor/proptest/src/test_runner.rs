//! Deterministic case generation for the vendored proptest.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the workspace's engine-level
        // properties are expensive, so every call site sets it explicitly
        // and this default only covers new, unconfigured blocks.
        ProptestConfig { cases: 64 }
    }
}

/// An explicit per-case failure, mirroring proptest's `TestCaseError`.
///
/// Property bodies may `return Err(TestCaseError::fail(..))` instead of
/// asserting; the vendored runner panics on it with the message (there is no
/// shrinking, so a failure aborts the test immediately).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property is false for this case.
    Fail(String),
    /// The generated case is invalid and should be skipped. The vendored
    /// runner treats a rejection as a skipped case, not a failure.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection (invalid input) with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// The result type of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// xoshiro256++, seeded per test from the test's name so each property
/// explores its own deterministic sequence.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// An RNG seeded from `test_name` (stable across runs and platforms).
    pub fn for_test(test_name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 to fill the state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut state = [0u64; 4];
        for slot in &mut state {
            h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *slot = z ^ (z >> 31);
        }
        TestRng { s: state }
    }

    /// The next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("prop_x");
        let mut b = TestRng::for_test("prop_x");
        let mut c = TestRng::for_test("prop_y");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = TestRng::for_test("floats");
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
