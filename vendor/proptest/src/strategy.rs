//! Value-generation strategies (generate-only; no shrinking).

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree: `generate` draws a single
/// concrete value, and failing cases are reported without shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type (needed by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`any`](crate::arbitrary::any).
pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A fixed value, generated every time (`Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ------------------------------------------------------------------- ranges

macro_rules! impl_int_range_strategy {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo as i128 + offset as i128) as $ty
                }
            }
        )*
    };
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $ty) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.next_f64() as $ty) * (hi - lo)
                }
            }
        )*
    };
}

impl_float_range_strategy!(f32, f64);

// ------------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

// -------------------------------------------------------------- collections

/// Lengths accepted by [`collection::vec`](crate::collection::vec).
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

/// Output of [`collection::vec`](crate::collection::vec).
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

// -------------------------------------------------------------------- union

/// Uniform choice among same-typed strategies ([`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}
