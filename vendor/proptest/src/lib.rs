//! Vendored, offline subset of proptest.
//!
//! The build environment has no registry access, so the workspace carries the
//! slice of proptest its property tests actually use: the `proptest!` macro,
//! `Strategy` with `prop_map`/`boxed`, range and tuple strategies, `any`,
//! `prop_oneof!`, and `collection::vec`. Cases are generated from a
//! deterministic xoshiro-style stream (seeded per test by the test name), and
//! failures panic immediately with the case index — there is no shrinking.
//! The API mirrors proptest 1.x closely enough that restoring the real crate
//! is a one-line manifest edit.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod arbitrary {
    //! `Arbitrary` and `any`.

    use crate::strategy::AnyStrategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T` (`any::<u8>()` etc.).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),* $(,)?) => {
            $(impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
            })*
        };
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_f64()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_f64() as f32
        }
    }
}

pub mod prelude {
    //! One-stop imports for property tests, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs deterministic property tests.
///
/// Supports the forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn prop(x in 0u32..10, ys in proptest::collection::vec(any::<u8>(), 1..50)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    // The body runs in a Result-returning closure so tests
                    // may `return Err(TestCaseError::fail(..))`, as with the
                    // real proptest runner.
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        Ok(())
                    })();
                    match __outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err(err) => panic!("case {__case}: {err}"),
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Picks uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
