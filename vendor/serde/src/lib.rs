//! Vendored, offline subset of the serde data model.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace carries the fraction of serde it actually exercises: the full
//! `ser` trait hierarchy (the counting-serializer tests in
//! `cputopo/tests/serde_roundtrip.rs` drive real structural traversal), a
//! marker `Deserialize` trait (no format crate exists in the workspace, so
//! nothing ever deserializes), and the `derive` re-exports. The API mirrors
//! serde 1.x so swapping the real crate back in is a one-line manifest edit.

pub mod ser;

pub mod de {
    //! Deserialization marker.
    //!
    //! The workspace deliberately carries no serde format crate; `Deserialize`
    //! exists so `#[derive(Deserialize)]` keeps compiling and the trait bound
    //! remains available to downstream signatures.

    /// Marker for types that could be deserialized by a format crate.
    pub trait Deserialize<'de>: Sized {}

    /// Marker mirroring serde's owned-deserialization bound.
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
}

pub use de::Deserialize;
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ------------------------------------------------------------ std impls: ser

macro_rules! impl_ser_prim {
    ($($ty:ty => $method:ident),* $(,)?) => {
        $(impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        })*
    };
}

impl_ser_prim!(
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
);

impl Serialize for i128 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i128(*self)
    }
}

impl Serialize for u128 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u128(*self)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<S, I>(serializer: S, len: usize, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    I: IntoIterator,
    I::Item: Serialize,
{
    use ser::SerializeSeq;
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in iter {
        seq.serialize_element(&item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeTuple;
        let mut tup = serializer.serialize_tuple(N)?;
        for item in self {
            tup.serialize_element(item)?;
        }
        tup.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeMap;
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_key(k)?;
            map.serialize_value(v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeMap;
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_key(k)?;
            map.serialize_value(v)?;
        }
        map.end()
    }
}

macro_rules! impl_ser_tuple {
    ($len:expr => $($name:ident . $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                use ser::SerializeTuple;
                let mut tup = serializer.serialize_tuple($len)?;
                $(tup.serialize_element(&self.$idx)?;)+
                tup.end()
            }
        }
    };
}

impl_ser_tuple!(1 => A.0);
impl_ser_tuple!(2 => A.0, B.1);
impl_ser_tuple!(3 => A.0, B.1, C.2);
impl_ser_tuple!(4 => A.0, B.1, C.2, D.3);
impl_ser_tuple!(5 => A.0, B.1, C.2, D.3, E.4);
impl_ser_tuple!(6 => A.0, B.1, C.2, D.3, E.4, F.5);
impl_ser_tuple!(7 => A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_ser_tuple!(8 => A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

// ------------------------------------------------------------- std impls: de

macro_rules! impl_de_marker {
    ($($ty:ty),* $(,)?) => {
        $(impl<'de> Deserialize<'de> for $ty {})*
    };
}

impl_de_marker!(
    bool, i8, i16, i32, i64, i128, u8, u16, u32, u64, u128, isize, usize, f32, f64, char,
    String, ()
);

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeSet<T> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>, H> Deserialize<'de>
    for std::collections::HashMap<K, V, H>
{
}

macro_rules! impl_de_tuple {
    ($($name:ident),+) => {
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {}
    };
}

impl_de_tuple!(A);
impl_de_tuple!(A, B);
impl_de_tuple!(A, B, C);
impl_de_tuple!(A, B, C, D);
impl_de_tuple!(A, B, C, D, E);
impl_de_tuple!(A, B, C, D, E, F);
impl_de_tuple!(A, B, C, D, E, F, G);
impl_de_tuple!(A, B, C, D, E, F, G, H);
