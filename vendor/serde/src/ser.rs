//! Serialization traits, mirroring `serde::ser` 1.x.
//!
//! The method set matches what the workspace's hand-written serializers
//! implement (see `cputopo/tests/serde_roundtrip.rs`): every required method
//! of serde's `Serializer` except the defaulted `i128`/`u128` pair, plus the
//! seven compound-type companion traits.

use std::fmt::Display;

/// A type that can describe itself to any [`Serializer`].
pub trait Serialize {
    /// Drives `serializer` over this value's structure.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Errors produced during serialization.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data-format backend, driven by [`Serialize`] implementations.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type of the format.
    type Error: Error;

    /// Compound serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i128` (defaulted, like serde's, so hand-written
    /// serializers need not implement it; this stub truncates to `i64`).
    fn serialize_i128(self, v: i128) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(v as i64)
    }
    /// Serializes a `u128` (defaulted; truncates to `u64`).
    fn serialize_u128(self, v: u128) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(v as u64)
    }
    /// Serializes a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes raw bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit struct like `struct Marker;`.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct like `struct Id(u32);`.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype enum variant.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins a variable-length sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a fixed-length tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begins a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begins a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct with named fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_seq`].
pub trait SerializeSeq {
    /// Matches the parent serializer's `Ok`.
    type Ok;
    /// Matches the parent serializer's `Error`.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple`].
pub trait SerializeTuple {
    /// Matches the parent serializer's `Ok`.
    type Ok;
    /// Matches the parent serializer's `Error`.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple_struct`].
pub trait SerializeTupleStruct {
    /// Matches the parent serializer's `Ok`.
    type Ok;
    /// Matches the parent serializer's `Error`.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple_variant`].
pub trait SerializeTupleVariant {
    /// Matches the parent serializer's `Ok`.
    type Ok;
    /// Matches the parent serializer's `Error`.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_map`].
pub trait SerializeMap {
    /// Matches the parent serializer's `Ok`.
    type Ok;
    /// Matches the parent serializer's `Error`.
    type Error: Error;
    /// Serializes one key.
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serializes one value.
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Serializes a key-value pair.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error> {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    /// Matches the parent serializer's `Ok`.
    type Ok;
    /// Matches the parent serializer's `Error`.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_struct_variant`].
pub trait SerializeStructVariant {
    /// Matches the parent serializer's `Ok`.
    type Ok;
    /// Matches the parent serializer's `Error`.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}
