//! Vendored, offline subset of the criterion benchmarking API.
//!
//! The build environment cannot fetch crates, so benches link against this
//! minimal harness instead: it runs each benchmark `sample_size` times after
//! one warm-up iteration and prints mean wall-clock time per iteration. The
//! API mirrors criterion 0.5 (`benchmark_group`, `sample_size`,
//! `warm_up_time`, `measurement_time`, `bench_function`, `iter`,
//! `criterion_group!`, `criterion_main!`) so the real crate can be restored
//! by one manifest edit.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (an inlining barrier).
pub use std::hint::black_box;

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            samples: 10,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
        }
    }
}

/// A group of related benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to record.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Sets the warm-up budget (this harness runs one warm-up iteration
    /// regardless; the budget caps nothing further).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget; sampling stops early once exceeded.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        // One untimed warm-up pass.
        f(&mut bencher);
        bencher.iters = 0;
        bencher.elapsed = Duration::ZERO;
        let started = Instant::now();
        for _ in 0..self.samples {
            f(&mut bencher);
            if started.elapsed() > self.measurement {
                break;
            }
        }
        let per_iter = if bencher.iters > 0 {
            bencher.elapsed / bencher.iters
        } else {
            Duration::ZERO
        };
        println!(
            "  {name}: {:.3} ms/iter ({} iters)",
            per_iter.as_secs_f64() * 1e3,
            bencher.iters
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Times closures passed to [`BenchmarkGroup::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        let out = routine();
        self.elapsed += t0.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }
}

/// Declares a group-runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
