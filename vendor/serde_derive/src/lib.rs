//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! serde stub.
//!
//! The build environment cannot reach a registry, so this proc-macro avoids
//! `syn`/`quote`: it walks the raw [`TokenStream`] directly. It supports the
//! type shapes the workspace actually derives on — structs with named fields,
//! tuple/newtype structs, and enums with unit, tuple, and struct variants —
//! and rejects generics and `#[serde(...)]` attributes loudly rather than
//! mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Parsed {
    name: String,
    data: Data,
}

enum Data {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Skips outer attributes (`#[...]`, including expanded doc comments),
/// panicking on `#[serde(...)]`, which this stub does not implement.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while *i + 1 < tokens.len() && is_punct(&tokens[*i], '#') {
        if let TokenTree::Group(g) = &tokens[*i + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let body = g.stream().to_string();
                assert!(
                    !body.starts_with("serde"),
                    "vendored serde_derive does not support #[serde(...)] attributes"
                );
                *i += 2;
                continue;
            }
        }
        break;
    }
}

fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize, what: &str) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("vendored serde_derive: expected {what}, found {other:?}"),
    }
}

/// Advances past one type (or discriminant) up to a top-level comma, tracking
/// angle-bracket depth so `BTreeMap<String, Table>` counts as one field.
fn skip_to_field_end(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(group: &[TokenTree]) -> Vec<String> {
    let mut i = 0;
    let mut fields = Vec::new();
    while i < group.len() {
        skip_attrs(group, &mut i);
        if i >= group.len() {
            break;
        }
        skip_vis(group, &mut i);
        let name = expect_ident(group, &mut i, "field name");
        assert!(
            is_punct(&group[i], ':'),
            "vendored serde_derive: expected ':' after field `{name}`"
        );
        i += 1;
        skip_to_field_end(group, &mut i);
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(group: &[TokenTree]) -> usize {
    let mut i = 0;
    let mut count = 0;
    while i < group.len() {
        skip_attrs(group, &mut i);
        skip_vis(group, &mut i);
        if i >= group.len() {
            break;
        }
        count += 1;
        skip_to_field_end(group, &mut i);
    }
    count
}

fn parse_variants(group: &[TokenTree]) -> Vec<Variant> {
    let mut i = 0;
    let mut variants = Vec::new();
    while i < group.len() {
        skip_attrs(group, &mut i);
        if i >= group.len() {
            break;
        }
        let name = expect_ident(group, &mut i, "variant name");
        let shape = match group.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Shape::Tuple(count_tuple_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Shape::Named(parse_named_fields(&inner))
            }
            _ => Shape::Unit,
        };
        // Skip any discriminant up to the variant separator.
        while i < group.len() && !is_punct(&group[i], ',') {
            i += 1;
        }
        if i < group.len() {
            i += 1; // the comma
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kw = expect_ident(&tokens, &mut i, "`struct` or `enum`");
    let name = expect_ident(&tokens, &mut i, "type name");
    if matches!(tokens.get(i), Some(t) if is_punct(t, '<')) {
        panic!("vendored serde_derive does not support generic types (deriving on `{name}`)");
    }
    let data = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Data::NamedStruct(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Data::TupleStruct(count_tuple_fields(&inner))
            }
            Some(t) if is_punct(t, ';') => Data::UnitStruct,
            other => panic!("vendored serde_derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Data::Enum(parse_variants(&inner))
            }
            other => panic!("vendored serde_derive: unsupported enum body {other:?}"),
        },
        other => panic!("vendored serde_derive: cannot derive for `{other}` items"),
    };
    Parsed { name, data }
}

/// Derives `serde::Serialize` with genuine field-by-field traversal.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Parsed { name, data } = parse(input);
    let body = match &data {
        Data::NamedStruct(fields) => {
            let mut code = format!(
                "let mut __s = ::serde::Serializer::serialize_struct(__serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for f in fields {
                code.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __s, \"{f}\", &self.{f})?;\n"
                ));
            }
            code.push_str("::serde::ser::SerializeStruct::end(__s)");
            code
        }
        Data::TupleStruct(1) => format!(
            "::serde::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
        ),
        Data::TupleStruct(n) => {
            let mut code = format!(
                "let mut __s = ::serde::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {n})?;\n"
            );
            for idx in 0..*n {
                code.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __s, &self.{idx})?;\n"
                ));
            }
            code.push_str("::serde::ser::SerializeTupleStruct::end(__s)");
            code
        }
        Data::UnitStruct => {
            format!("::serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")")
        }
        Data::Enum(variants) => {
            let mut arms = String::new();
            for (vi, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(__serializer, \"{name}\", {vi}u32, \"{vname}\"),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {vi}u32, \"{vname}\", __f0),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{\nlet mut __s = ::serde::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {vi}u32, \"{vname}\", {n})?;\n",
                            binders.join(", ")
                        );
                        for b in &binders {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut __s, {b})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeTupleVariant::end(__s)\n}\n");
                        arms.push_str(&arm);
                    }
                    Shape::Named(fields) => {
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{\nlet mut __s = ::serde::Serializer::serialize_struct_variant(__serializer, \"{name}\", {vi}u32, \"{vname}\", {})?;\n",
                            fields.join(", "),
                            fields.len()
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut __s, \"{f}\", {f})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeStructVariant::end(__s)\n}\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
                 -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    out.parse().expect("generated Serialize impl parses")
}

/// Derives the marker `serde::de::Deserialize` (no format crate exists in the
/// workspace, so deserialization has no behavior to generate).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Parsed { name, .. } = parse(input);
    format!("#[automatically_derived]\nimpl<'de> ::serde::de::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated Deserialize impl parses")
}
